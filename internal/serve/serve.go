// Package serve is the online map-matching service behind lhmm-serve:
// an HTTP/JSON API over the learned matcher with whole-trajectory and
// streaming-session endpoints, bounded admission control, graceful
// drain, and atomic model hot-reload.
//
// Design goals, in order:
//
//  1. Online/offline parity — POST /v1/match runs the exact same
//     Model.MatchContext as the lhmm CLI and encodes the exact same
//     MatchResponse, so a served match is byte-identical to an offline
//     one for the same trajectory and configuration.
//  2. Bounded resources — matching is CPU-bound, so requests pass an
//     admission gate (fixed worker pool + bounded wait queue) and
//     overload sheds fast 429s instead of accumulating goroutines;
//     streaming sessions are capped and TTL-evicted.
//  3. Always-answer — /healthz and /metrics never block on matching
//     work, a failed hot-reload keeps the previous model serving, and
//     armed failpoints surface as 5xx responses, not crashes.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/shadow"
	"repro/internal/traj"
)

// HTTP telemetry.
var (
	obsRequests   = obs.Default.Counter("serve.requests")
	obsErrors     = obs.Default.Counter("serve.errors")
	obsRequestS   = obs.Default.Histogram("serve.request.seconds", obs.LatencyBuckets)
	obsDraining   = obs.Default.Gauge("serve.draining")
	obsMatches    = obs.Default.Counter("serve.matches")
	obsMatchErrs  = obs.Default.Counter("serve.match.errors")
	obsQualityDeg = obs.Default.Gauge("serve.quality.degraded")
	obsLowMargin  = obs.Default.Counter("serve.match.lowmargin")
)

// Config parameterizes a Server. Zero values get sane defaults.
type Config struct {
	// Workers bounds concurrent matching work (default GOMAXPROCS via
	// the caller; here literally 4 if unset).
	Workers int
	// Queue bounds requests waiting for a worker before shedding 429s.
	Queue int
	// MaxSessions caps live streaming sessions.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this.
	SessionTTL time.Duration
	// DefaultLag is the streaming emit lag when a session doesn't
	// choose one.
	DefaultLag int
	// MatchTimeout caps per-request match wall-clock; request bodies
	// may ask for less, never more.
	MatchTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Quality configures the online SLO monitor behind GET /v1/quality
	// and the /readyz quality detail. Zero thresholds disable their
	// checks; window/slot zero values take the obs defaults. With
	// MaxDriftPSI > 0 and a DriftBaseline, a score_drift violation is
	// wired automatically.
	Quality obs.QualityConfig
	// DriftBaseline, when set, enables live score-distribution
	// collection and the GET /v1/drift comparison against it.
	DriftBaseline *obs.DriftBaseline
	// DriftBaselinePath is the provenance reported by /v1/drift.
	DriftBaselinePath string
	// Capture, when set, records sampled plain match requests and
	// response digests for lhmm replay.
	Capture *Capture
	// Checkpoint configures durable streaming sessions: with a non-empty
	// Dir, in-flight sessions are periodically snapshotted to disk and
	// restored on boot. Zero Dir disables checkpointing entirely.
	Checkpoint CheckpointConfig
	// Sched, when set, is the cross-request micro-batching scheduler
	// whose lifecycle the server owns: Close flushes and stops it after
	// the last in-flight match. The loader installs it as each loaded
	// model's Exec — the server itself never routes through it directly,
	// so a model without an executor serves unchanged.
	Sched *sched.Scheduler
	// Shadow configures candidate-model shadow scoring. With a nil
	// Loader the subsystem is absent entirely: no endpoints, no mirror,
	// and the serving path is byte-identical to a build without it.
	Shadow ShadowConfig
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.Queue < 0 {
		out.Queue = 0
	}
	if out.MaxSessions <= 0 {
		out.MaxSessions = 1024
	}
	if out.SessionTTL <= 0 {
		out.SessionTTL = 5 * time.Minute
	}
	if out.DefaultLag < 0 {
		out.DefaultLag = 0
	}
	if out.MatchTimeout <= 0 {
		out.MatchTimeout = 30 * time.Second
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 8 << 20
	}
	return out
}

// Server is the lhmm-serve HTTP service. Create with New, expose via
// Handler, stop with Drain then Close.
type Server struct {
	cfg    Config
	reg    *Registry
	sess   *SessionManager
	adm    *admission
	qm     *obs.QualityMonitor
	ckpt   *Checkpointer // nil when checkpointing is disabled
	shadow *shadowState  // nil when shadow scoring is not configured
	mux    *http.ServeMux

	draining  chan struct{} // closed by Drain
	drainOnce sync.Once
	wg        sync.WaitGroup // in-flight matching work

	// testHookMatchStarted, when set, is called after a match request
	// is admitted and before the match runs (drain tests synchronize
	// on it).
	testHookMatchStarted func()
}

// New builds a Server around a model registry. It enables the Default
// obs registry (a server without metrics is not operable) and starts
// the session janitor. With cfg.Checkpoint.Dir set, it also creates
// the checkpoint store, restores every recoverable session from it
// (quarantining the rest), and starts the async checkpointer — so a
// ready server has already recovered its pre-crash sessions. The only
// error paths are checkpoint-store setup failures.
func New(reg *Registry, cfg Config) (*Server, error) {
	obs.Default.Enable()
	c := cfg.withDefaults()
	s := &Server{
		cfg:      c,
		reg:      reg,
		sess:     NewSessionManager(c.MaxSessions, c.SessionTTL),
		adm:      newAdmission(c.Workers, c.Queue),
		draining: make(chan struct{}),
	}
	if c.Checkpoint.Dir != "" {
		ck, err := NewCheckpointer(c.Checkpoint, s.sess)
		if err != nil {
			return nil, err
		}
		s.ckpt = ck
		s.sess.onRemove = ck.Remove
		if m, wh := reg.Entry(); m != nil {
			ck.Recover(m, wh, time.Now(), c.SessionTTL)
		} else if reg != nil {
			obs.Logger().Warn("serve: checkpoint recovery skipped: no model loaded yet")
		}
		ck.Start()
	}
	// The quality monitor mirrors its status into a gauge on top of any
	// caller-provided transition hook.
	qcfg := c.Quality
	userCB := qcfg.OnTransition
	qcfg.OnTransition = func(degraded bool, violations []string) {
		if degraded {
			obsQualityDeg.Set(1)
		} else {
			obsQualityDeg.Set(0)
		}
		if userCB != nil {
			userCB(degraded, violations)
		}
	}
	if c.DriftBaseline != nil {
		obs.DefaultDrift.Enable()
		if qcfg.MaxDriftPSI > 0 && qcfg.DriftProbe == nil {
			p := &driftProbe{base: c.DriftBaseline}
			qcfg.DriftProbe = p.value
		}
	}
	if c.Shadow.Loader != nil {
		s.shadow = newShadowState(c.Shadow)
		if c.Shadow.ModelPath != "" {
			// Same contract as hot-reload: corrupt candidate weights never
			// take the server down — shadow just stays idle.
			if err := s.shadow.load(c.Shadow.ModelPath); err != nil {
				obs.Logger().Warn("serve: boot shadow load failed; shadow idle", "error", err)
			}
		}
		if qcfg.MinShadowAgreement > 0 && qcfg.ShadowProbe == nil {
			minSamples := int64(c.Shadow.Thresholds.MinSamples)
			if minSamples <= 0 {
				minSamples = 50
			}
			p := &shadowProbe{st: s.shadow, min: minSamples}
			qcfg.ShadowProbe = p.value
		}
	}
	s.qm = obs.NewQualityMonitor(qcfg)
	s.sess.Start()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/points", s.handleSessionPush)
	s.mux.HandleFunc("POST /v1/sessions/{id}/finish", s.handleSessionFinish)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /v1/quality", s.handleQuality)
	s.mux.HandleFunc("GET /v1/drift", s.handleDrift)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /v1/shadow", s.handleShadow)
	s.mux.HandleFunc("POST /v1/shadow/load", s.handleShadowLoad)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	return s, nil
}

// Sessions exposes the session manager (tests drive Sweep directly).
func (s *Server) Sessions() *SessionManager { return s.sess }

// Checkpointer exposes the session checkpointer, or nil when
// checkpointing is disabled.
func (s *Server) Checkpointer() *Checkpointer { return s.ckpt }

// CheckpointSweep checkpoints every dirty session and blocks until
// all are durable or ctx expires — the planned-handover entry point
// (lhmm-serve wires it to SIGUSR2) and the drain path's final flush.
func (s *Server) CheckpointSweep(ctx context.Context) error {
	if s.ckpt == nil {
		return errors.New("serve: checkpointing disabled")
	}
	return s.ckpt.SweepSync(ctx)
}

// Drain stops admitting matching work — subsequent match/session
// requests get 503 — and blocks until in-flight matches finish or ctx
// expires, then flushes a final checkpoint sweep so every surviving
// session is durable before the process exits. Health and metrics
// endpoints keep answering throughout.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		close(s.draining)
		obsDraining.Set(1)
		obs.Logger().Info("serve: draining")
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	if s.ckpt != nil {
		if err := s.ckpt.SweepSync(ctx); err != nil {
			return err
		}
	}
	if s.shadow != nil {
		// Best-effort: shadow comparisons are observability, so an
		// incomplete flush degrades the report, never the drain.
		if err := s.shadow.mirror.Drain(ctx); err != nil {
			obs.Logger().Warn("serve: shadow drain incomplete", "error", err)
		}
	}
	return nil
}

// Close releases background resources (the session janitor, the
// checkpoint writer, and the batching scheduler). Call after Drain —
// the scheduler flushes its open micro-batches on Close, and any
// straggler submission after that falls back to direct scoring, so no
// request is ever stranded.
func (s *Server) Close() {
	s.sess.Stop()
	if s.ckpt != nil {
		s.ckpt.Stop()
	}
	if s.shadow != nil {
		s.shadow.mirror.Stop()
	}
	if s.cfg.Sched != nil {
		s.cfg.Sched.Close()
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// --- plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	obsErrors.Inc()
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// errorCode maps service errors to HTTP status codes.
func errorCode(err error) int {
	switch {
	case errors.Is(err, errOverloaded), errors.Is(err, errSessionCap):
		return http.StatusTooManyRequests
	case errors.Is(err, errSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

// model returns the served model or answers 503 (not ready).
func (s *Server) model(w http.ResponseWriter) (*core.Model, bool) {
	m := s.reg.Model()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: no model loaded"))
		return nil, false
	}
	return m, true
}

// refuseDraining answers 503 during drain and reports whether it did.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if s.isDraining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return true
	}
	return false
}

// overrideModel returns model, or a shallow copy with the request's
// break/sanitize policies applied. The copy shares every pointer-typed
// component (router, graph, embeddings — all safe for concurrent
// reads); only the Cfg value differs, so per-request options never
// mutate the shared model.
func overrideModel(m *core.Model, onBreak, sanitize string) (*core.Model, error) {
	if onBreak == "" && sanitize == "" {
		return m, nil
	}
	mm := *m
	if onBreak != "" {
		p, err := hmm.ParseBreakPolicy(onBreak)
		if err != nil {
			return nil, err
		}
		mm.Cfg.OnBreak = p
	}
	if sanitize != "" {
		sm, err := traj.ParseSanitizeMode(sanitize)
		if err != nil {
			return nil, err
		}
		mm.Cfg.Sanitize = sm
	}
	return &mm, nil
}

// --- handlers ---

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req MatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	m, ok := s.model(w)
	if !ok {
		return
	}
	ct, err := req.Trajectory(m.Cells)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var opts MatchOptions
	if req.Options != nil {
		opts = *req.Options
	}
	mm, err := overrideModel(m, opts.OnBreak, opts.Sanitize)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// ?debug=1 collects the per-request MatchTrace, ?explain=1 the
	// per-decision Explain artifact — both on a private model copy (Cfg
	// is a value; the shared model must never see the flags).
	debug := r.URL.Query().Get("debug") == "1"
	explain := r.URL.Query().Get("explain") == "1"
	if debug && !mm.Cfg.Trace {
		if mm == m {
			cp := *m
			mm = &cp
		}
		mm.Cfg.Trace = true
	}
	if explain && !mm.Cfg.Explain {
		if mm == m {
			cp := *m
			mm = &cp
		}
		mm.Cfg.Explain = true
	}
	asp := obs.SpanFromContext(r.Context()).StartChild("admission")
	release, err := s.adm.acquire(r.Context())
	asp.End()
	if err != nil {
		s.recordMatchFailure(err)
		writeError(w, errorCode(err), err)
		return
	}
	defer release()
	if s.refuseDraining(w) {
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	if s.testHookMatchStarted != nil {
		s.testHookMatchStarted()
	}

	timeout := s.cfg.MatchTimeout
	if opts.TimeoutMS > 0 {
		if d := time.Duration(opts.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	matchStart := time.Now()
	res, err := mm.MatchContext(ctx, ct)
	if err != nil {
		obsMatchErrs.Inc()
		s.recordMatchFailure(err)
		writeError(w, errorCode(err), err)
		return
	}
	obsMatches.Inc()
	s.qm.RecordMatch(time.Since(matchStart), res.Degraded > 0, len(res.Gaps) > 0)
	if res.Explain != nil && res.Explain.LowMarginDecisions > 0 {
		obsLowMargin.Add(int64(res.Explain.LowMarginDecisions))
	}
	switch {
	case debug || explain:
		// Debug/explain blocks are strictly appended after the embedded
		// MatchResponse, so the leading bytes stay identical to a plain
		// response. These requests are never captured (their bodies are
		// not the reproducibility contract).
		writeJSON(w, http.StatusOK, ExplainMatchResponse{
			MatchResponse: ResultJSON(res),
			Trace:         res.Trace,
			Explain:       res.Explain,
		})
	case s.cfg.Capture != nil:
		// Capture path: encode to a buffer so the digest is over the
		// exact bytes the client received (Encoder output to a buffer
		// and to the wire is identical).
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(ResultJSON(res)); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing to do
		s.cfg.Capture.Record(&req, mm, res, buf.Bytes())
	default:
		writeJSON(w, http.StatusOK, ResultJSON(res))
	}
	// Mirror completed plain matches through the shadow candidate: a
	// single non-blocking enqueue after the response is written, so
	// shadow scoring can never add serving latency. Debug/explain
	// requests are excluded, mirroring the capture contract.
	if s.shadow != nil && !debug && !explain {
		s.shadow.mirror.Offer(shadowJob(ct, mm, &req))
	}
}

// recordMatchFailure feeds a failed matching request into the quality
// monitor under the right signal: shed, empty-candidate, or plain
// error.
func (s *Server) recordMatchFailure(err error) {
	switch {
	case errors.Is(err, errOverloaded):
		s.qm.RecordShed()
	case errors.Is(err, hmm.ErrNoCandidates):
		s.qm.RecordEmpty()
	default:
		s.qm.RecordError()
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req SessionRequest
	if r.ContentLength != 0 {
		if !s.decode(w, r, &req) {
			return
		}
	}
	// One registry read: the model and the weights hash stamped into
	// the session's snapshots must belong to the same load.
	m, wh := s.reg.Entry()
	if m == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: no model loaded"))
		return
	}
	mm, err := overrideModel(m, req.OnBreak, req.Sanitize)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lag := s.cfg.DefaultLag
	if req.Lag != nil {
		if *req.Lag < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: negative lag %d", *req.Lag))
			return
		}
		lag = *req.Lag
	}
	sess, err := s.sess.Create(mm, wh, lag, time.Now())
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	// Sessions sampled for shadow scoring buffer their points and are
	// replayed through the candidate when they finish.
	if s.shadow != nil && s.shadow.mirror.SampleSession() {
		sess.enableShadow(mm, lag)
	}
	writeJSON(w, http.StatusOK, SessionResponse{ID: sess.ID, Lag: lag})
}

func (s *Server) handleSessionPush(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	lsp := obs.SpanFromContext(r.Context()).StartChild("session_lookup")
	sess, err := s.sess.Get(r.PathValue("id"))
	lsp.End()
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	var req PushRequest
	if !s.decode(w, r, &req) {
		return
	}
	m, ok := s.model(w)
	if !ok {
		return
	}
	ct, err := (&MatchRequest{Points: req.Points}).Trajectory(m.Cells)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	asp := obs.SpanFromContext(r.Context()).StartChild("admission")
	release, err := s.adm.acquire(r.Context())
	asp.End()
	if err != nil {
		s.recordMatchFailure(err)
		writeError(w, errorCode(err), err)
		return
	}
	defer release()
	s.wg.Add(1)
	defer s.wg.Done()

	pushStart := time.Now()
	fin, dropped, degDelta, err := sess.push(ct, pushStart)
	if s.ckpt != nil {
		// On-push async checkpoint (deduplicated; also on the error
		// path, since points before the failure were absorbed).
		s.ckpt.enqueue(sess)
	}
	if err != nil {
		obsMatchErrs.Inc()
		s.recordMatchFailure(err)
		writeError(w, errorCode(err), err)
		return
	}
	s.qm.RecordMatch(time.Since(pushStart), degDelta > 0, false)
	writeJSON(w, http.StatusOK, PushResponse{
		Finalized: matchedJSON(fin),
		Pending:   sess.status().Pending,
		Dropped:   dropped,
		Degraded:  degDelta,
	})
}

func (s *Server) handleSessionFinish(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, err := s.sess.Get(id)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	release, err := s.adm.acquire(r.Context())
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	defer release()
	s.wg.Add(1)
	defer s.wg.Done()

	res, err := sess.finish()
	s.sess.Remove(id)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
	if s.shadow != nil {
		if mdl, lag, pts := sess.shadowJob(); mdl != nil {
			s.shadow.mirror.OfferStream(shadow.Job{Trajectory: pts, Model: mdl, Lag: lag})
		}
	}
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sess.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sess.status())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.sess.Get(id); err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	s.sess.Remove(id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Reload(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "reloaded"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.isDraining():
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
	case s.reg.Model() == nil:
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: no model loaded"))
	case s.qm.Degraded():
		// Degraded quality is a detail, not unreadiness: the service
		// still answers (possibly on the classical fallback), so
		// pulling it from rotation would only shift load elsewhere.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready", "quality": "degraded"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.qm.Report())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DriftBaseline != nil {
		// Refresh the lhmm_drift_* gauges so every scrape carries the
		// current comparison, not the last /v1/drift poll's.
		s.compareDrift()
	}
	obs.PromHandler(w, r)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	obs.SnapshotHandler(w, r)
}
