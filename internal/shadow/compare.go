// Package shadow compares a candidate model against the active model
// on mirrored live traffic. It is the observability half of the
// closed-loop continuous-learning story (ROADMAP item 5): before a
// retrained model is promoted through the hot-reload registry, its
// behaviour on real requests — chosen segments, decision margins,
// learned scores, quality rates, wire bytes — is measured against the
// serving model, decision by decision, and folded into a promotion
// verdict. The comparison substrate is the explain machinery: both
// models re-run the request with Config.Explain set, so per-point
// margins and chosen routes are available without touching the
// serving path.
//
// The package is serving-stack agnostic: it works on hmm.Result pairs
// plus caller-encoded wire bodies, so lhmm-serve's mirror and the
// offline `lhmm replay -against` mode share one comparison.
package shadow

import (
	"bytes"
	"math"
	"time"

	"repro/internal/hmm"
)

// Comparison is the decision-level diff of one request run through the
// active and candidate models.
type Comparison struct {
	// Stream marks a finished streaming session replay (no explain
	// artifacts, so no margin deltas).
	Stream bool

	// Points is the number of per-point decisions compared (the longer
	// of the two matched sets; extra points on either side count as
	// disagreements). Agreed counts points where both models chose the
	// same segment, or both declared the point dead.
	Points int
	Agreed int

	// ActiveDead / CandDead count dead points on each side.
	ActiveDead int
	CandDead   int

	// DigestMatch reports whether the two encoded wire bodies are
	// byte-identical (the strongest agreement signal: identical bytes
	// means identical path, projections, and scores).
	DigestMatch bool

	// Per-request quality flags on each side.
	ActiveDegraded bool
	CandDegraded   bool
	ActiveGapped   bool
	CandGapped     bool

	// Learned-score deltas: |candidate Obs − active Obs| of the chosen
	// candidate at each point where both models were alive. SumAbs and
	// Max aggregate over ScoreDeltas samples.
	ScoreDeltas      int
	SumAbsScoreDelta float64
	MaxAbsScoreDelta float64

	// Margin deltas (candidate − active, nats) at each point where both
	// explain artifacts carry a chosen decision. Signed sum tracks
	// whether the candidate is systematically more or less confident;
	// the absolute sum tracks how far apart the two models' confidence
	// is regardless of direction.
	MarginDeltas      int
	SumMarginDelta    float64
	SumAbsMarginDelta float64

	// CandErr is the candidate's match error when the active model
	// answered and the candidate failed — always a disagreement.
	CandErr error
	// CandLatency is the candidate's match wall-clock (filled by the
	// mirror worker; zero in offline comparisons that don't time it).
	CandLatency time.Duration

	// ActiveRes / ActiveBody are the active model's result and encoded
	// wire body, carried so disagreement consumers (the capture writer)
	// can persist exactly what the serving model answered.
	ActiveRes  *hmm.Result
	ActiveBody []byte
}

// Disagrees reports whether this request is a disagreement: any
// per-point decision differing, the wire bytes differing, or the
// candidate failing outright.
func (c *Comparison) Disagrees() bool {
	return c.CandErr != nil || c.Agreed < c.Points || !c.DigestMatch
}

// Compare diffs the active and candidate results of one request.
// aBody/cBody must be the wire encodings of the two results (the exact
// bytes a client would have received); digest equality is defined over
// them. Margin deltas are collected when both results carry Explain
// artifacts (batch matches mirrored with Config.Explain set); streaming
// replays pass nil explains and still get segment agreement, score
// deltas, and quality-rate flags.
func Compare(a, c *hmm.Result, aBody, cBody []byte) Comparison {
	cmp := Comparison{
		DigestMatch:    bytes.Equal(aBody, cBody),
		ActiveDegraded: a.Degraded > 0,
		CandDegraded:   c.Degraded > 0,
		ActiveGapped:   len(a.Gaps) > 0,
		CandGapped:     len(c.Gaps) > 0,
		ActiveRes:      a,
		ActiveBody:     aBody,
	}
	n := len(a.Matched)
	if len(c.Matched) < n {
		n = len(c.Matched)
	}
	cmp.Points = len(a.Matched)
	if len(c.Matched) > cmp.Points {
		cmp.Points = len(c.Matched)
	}
	for i := 0; i < n; i++ {
		da := i < len(a.Dead) && a.Dead[i]
		dc := i < len(c.Dead) && c.Dead[i]
		if da {
			cmp.ActiveDead++
		}
		if dc {
			cmp.CandDead++
		}
		switch {
		case da && dc:
			cmp.Agreed++
		case da != dc:
			// One model matched a point the other declared dead.
		default:
			if a.Matched[i].Seg == c.Matched[i].Seg {
				cmp.Agreed++
			}
			d := math.Abs(finite(c.Matched[i].Obs) - finite(a.Matched[i].Obs))
			cmp.ScoreDeltas++
			cmp.SumAbsScoreDelta += d
			if d > cmp.MaxAbsScoreDelta {
				cmp.MaxAbsScoreDelta = d
			}
		}
	}
	if a.Explain != nil && c.Explain != nil {
		m := len(a.Explain.Points)
		if len(c.Explain.Points) < m {
			m = len(c.Explain.Points)
		}
		for i := 0; i < m; i++ {
			ac, cc := a.Explain.Points[i].Chosen, c.Explain.Points[i].Chosen
			if ac == nil || cc == nil {
				continue
			}
			d := finite(cc.Margin) - finite(ac.Margin)
			cmp.MarginDeltas++
			cmp.SumMarginDelta += d
			cmp.SumAbsMarginDelta += math.Abs(d)
		}
	}
	return cmp
}

// StreamResult assembles the comparable view of a finished streaming
// matcher: the same fields Compare reads from a batch Result, built
// from the matcher's finalized state.
func StreamResult(sm *hmm.StreamMatcher) *hmm.Result {
	return &hmm.Result{
		Matched:  sm.Matched(),
		Dead:     sm.Dead(),
		Gaps:     sm.Gaps(),
		Path:     sm.Path(),
		Degraded: sm.Degraded(),
	}
}

// finite maps NaN/Inf to 0 (mirrors the wire encoder's sanitization,
// so deltas are over what clients would actually see).
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
