package shadow

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/hmm"
	"repro/internal/roadnet"
)

func rseg(s int) roadnet.SegmentID { return roadnet.SegmentID(s) }

func res(segs []int, dead []bool) *hmm.Result {
	r := &hmm.Result{
		Matched: make([]hmm.Candidate, len(segs)),
		Dead:    dead,
	}
	for i, s := range segs {
		r.Matched[i].Seg = rseg(s)
		r.Matched[i].Obs = 0.5
	}
	if r.Dead == nil {
		r.Dead = make([]bool, len(segs))
	}
	return r
}

func TestCompareFullAgreement(t *testing.T) {
	a := res([]int{1, 2, 3}, nil)
	c := res([]int{1, 2, 3}, nil)
	body := []byte(`{"x":1}`)
	cmp := Compare(a, c, body, body)
	if cmp.Points != 3 || cmp.Agreed != 3 {
		t.Fatalf("points/agreed = %d/%d, want 3/3", cmp.Points, cmp.Agreed)
	}
	if !cmp.DigestMatch || cmp.Disagrees() {
		t.Fatalf("identical results should not disagree: %+v", cmp)
	}
}

func TestCompareSegmentDisagreement(t *testing.T) {
	a := res([]int{1, 2, 3}, nil)
	c := res([]int{1, 9, 3}, nil)
	cmp := Compare(a, c, []byte("a"), []byte("c"))
	if cmp.Agreed != 2 {
		t.Fatalf("agreed = %d, want 2", cmp.Agreed)
	}
	if cmp.DigestMatch {
		t.Fatal("different bodies must not digest-match")
	}
	if !cmp.Disagrees() {
		t.Fatal("segment mismatch must disagree")
	}
}

// Both models declaring a point dead is agreement; one-sided death is
// not.
func TestCompareDeadPoints(t *testing.T) {
	a := res([]int{1, 0, 3}, []bool{false, true, false})
	c := res([]int{1, 0, 3}, []bool{false, true, false})
	body := []byte("b")
	cmp := Compare(a, c, body, body)
	if cmp.Agreed != 3 || cmp.ActiveDead != 1 || cmp.CandDead != 1 {
		t.Fatalf("both-dead should agree: %+v", cmp)
	}

	c2 := res([]int{1, 2, 3}, nil)
	cmp = Compare(a, c2, body, []byte("b2"))
	if cmp.Agreed != 2 {
		t.Fatalf("one-sided dead point counted as agreement: %+v", cmp)
	}
}

// Extra matched points on either side count as disagreements via the
// max-length Points denominator.
func TestCompareLengthMismatch(t *testing.T) {
	a := res([]int{1, 2, 3, 4}, nil)
	c := res([]int{1, 2}, nil)
	cmp := Compare(a, c, []byte("a"), []byte("c"))
	if cmp.Points != 4 || cmp.Agreed != 2 {
		t.Fatalf("points/agreed = %d/%d, want 4/2", cmp.Points, cmp.Agreed)
	}
}

func TestCompareScoreDeltas(t *testing.T) {
	a := res([]int{1, 2}, nil)
	c := res([]int{1, 2}, nil)
	a.Matched[0].Obs, c.Matched[0].Obs = 0.9, 0.6 // |Δ| = 0.3
	a.Matched[1].Obs, c.Matched[1].Obs = 0.5, 0.4 // |Δ| = 0.1
	cmp := Compare(a, c, []byte("b"), []byte("b"))
	if cmp.ScoreDeltas != 2 {
		t.Fatalf("score deltas = %d, want 2", cmp.ScoreDeltas)
	}
	if math.Abs(cmp.SumAbsScoreDelta-0.4) > 1e-12 {
		t.Fatalf("sum abs score delta = %v, want 0.4", cmp.SumAbsScoreDelta)
	}
	if math.Abs(cmp.MaxAbsScoreDelta-0.3) > 1e-12 {
		t.Fatalf("max abs score delta = %v, want 0.3", cmp.MaxAbsScoreDelta)
	}
}

// Non-finite scores are sanitized to 0 before differencing, mirroring
// the wire encoder.
func TestCompareNonFiniteScores(t *testing.T) {
	a := res([]int{1}, nil)
	c := res([]int{1}, nil)
	a.Matched[0].Obs = math.NaN()
	c.Matched[0].Obs = math.Inf(1)
	cmp := Compare(a, c, []byte("b"), []byte("b"))
	if cmp.SumAbsScoreDelta != 0 || cmp.MaxAbsScoreDelta != 0 {
		t.Fatalf("non-finite scores must sanitize to zero delta: %+v", cmp)
	}
}

func TestCompareMarginDeltas(t *testing.T) {
	a := res([]int{1, 2}, nil)
	c := res([]int{1, 2}, nil)
	a.Explain = &hmm.Explain{Points: []hmm.ExplainPoint{
		{Chosen: &hmm.ExplainChoice{Seg: 1, Margin: 2.0}},
		{Chosen: &hmm.ExplainChoice{Seg: 2, Margin: 1.0}},
	}}
	c.Explain = &hmm.Explain{Points: []hmm.ExplainPoint{
		{Chosen: &hmm.ExplainChoice{Seg: 1, Margin: 2.5}}, // Δ = +0.5
		{Chosen: &hmm.ExplainChoice{Seg: 2, Margin: 0.2}}, // Δ = -0.8
	}}
	cmp := Compare(a, c, []byte("b"), []byte("b"))
	if cmp.MarginDeltas != 2 {
		t.Fatalf("margin deltas = %d, want 2", cmp.MarginDeltas)
	}
	if math.Abs(cmp.SumMarginDelta-(-0.3)) > 1e-12 {
		t.Fatalf("signed margin sum = %v, want -0.3", cmp.SumMarginDelta)
	}
	if math.Abs(cmp.SumAbsMarginDelta-1.3) > 1e-12 {
		t.Fatalf("abs margin sum = %v, want 1.3", cmp.SumAbsMarginDelta)
	}
}

func TestStatsAgreementAndReset(t *testing.T) {
	s := NewStats()
	if r, n := s.Agreement(); r != 1 || n != 0 {
		t.Fatalf("empty stats agreement = %v/%d, want 1/0", r, n)
	}
	cmp := Compare(res([]int{1, 2}, nil), res([]int{1, 9}, nil), []byte("a"), []byte("c"))
	cmp.CandLatency = 3 * time.Millisecond
	s.Record(&cmp)
	if r, n := s.Agreement(); n != 1 || r != 0.5 {
		t.Fatalf("agreement = %v/%d, want 0.5/1", r, n)
	}
	s.Reset()
	if r, n := s.Agreement(); r != 1 || n != 0 {
		t.Fatalf("reset did not clear aggregates: %v/%d", r, n)
	}
}

func TestReportVerdicts(t *testing.T) {
	th := Thresholds{MinSamples: 2, MinAgreement: 0.9, MaxQualityRegression: 0.05}
	agree := func() Comparison {
		body := []byte("b")
		return Compare(res([]int{1, 2}, nil), res([]int{1, 2}, nil), body, body)
	}

	s := NewStats()
	cmp := agree()
	s.Record(&cmp)
	if rep := s.Report(th); rep.Verdict != VerdictInsufficient {
		t.Fatalf("1 sample < min 2: verdict %q, want insufficient_data", rep.Verdict)
	}

	cmp = agree()
	s.Record(&cmp)
	rep := s.Report(th)
	if rep.Verdict != VerdictReady || len(rep.Reasons) != 0 {
		t.Fatalf("full agreement: verdict %q reasons %v, want ready", rep.Verdict, rep.Reasons)
	}
	if rep.AgreementRate != 1 || rep.DigestMatchRate != 1 {
		t.Fatalf("rates %v/%v, want 1/1", rep.AgreementRate, rep.DigestMatchRate)
	}

	// Low agreement flips to not_ready with a reason.
	s = NewStats()
	for i := 0; i < 2; i++ {
		bad := Compare(res([]int{1, 2}, nil), res([]int{9, 8}, nil), []byte("a"), []byte("c"))
		s.Record(&bad)
	}
	rep = s.Report(th)
	if rep.Verdict != VerdictNotReady || len(rep.Reasons) == 0 {
		t.Fatalf("zero agreement: verdict %q reasons %v, want not_ready", rep.Verdict, rep.Reasons)
	}

	// Candidate failures count against the quality-regression budget.
	s = NewStats()
	cmp = agree()
	s.Record(&cmp)
	fail := Comparison{Points: 2, CandErr: errors.New("boom")}
	s.Record(&fail)
	rep = s.Report(th)
	if rep.Verdict != VerdictNotReady {
		t.Fatalf("50%% candidate failures: verdict %q, want not_ready", rep.Verdict)
	}
	if rep.Candidate.FailureRate != 0.5 {
		t.Fatalf("candidate failure rate %v, want 0.5", rep.Candidate.FailureRate)
	}
}

// Zero-valued thresholds fall back to the documented defaults inside
// Report, so a caller passing Thresholds{} still gets a real gate.
func TestThresholdDefaults(t *testing.T) {
	s := NewStats()
	cmp := Compare(res([]int{1}, nil), res([]int{1}, nil), []byte("b"), []byte("b"))
	s.Record(&cmp)
	rep := s.Report(Thresholds{})
	if rep.Thresholds.MinSamples != 50 || rep.Thresholds.MinAgreement != 0.98 || rep.Thresholds.MaxQualityRegression != 0.05 {
		t.Fatalf("defaults not applied: %+v", rep.Thresholds)
	}
	if rep.Verdict != VerdictInsufficient {
		t.Fatalf("1 sample under default min 50: verdict %q", rep.Verdict)
	}
}

func TestComparisonDisagrees(t *testing.T) {
	ok := Comparison{Points: 3, Agreed: 3, DigestMatch: true}
	if ok.Disagrees() {
		t.Fatal("full agreement flagged as disagreement")
	}
	for _, c := range []Comparison{
		{Points: 3, Agreed: 2, DigestMatch: true},
		{Points: 3, Agreed: 3, DigestMatch: false},
		{Points: 3, Agreed: 3, DigestMatch: true, CandErr: errors.New("x")},
	} {
		if !c.Disagrees() {
			t.Fatalf("should disagree: %+v", c)
		}
	}
}
