package shadow

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hmm"
	"repro/internal/traj"
)

// Mirror asynchronously replays a deterministic sample of completed
// requests through both the active and the candidate model on a
// bounded worker pool. The serving path only ever pays one non-blocking
// channel send: a full queue drops the sample and counts it, so shadow
// work can never add latency to live matching. Both replays run with
// Config.Explain set (batch jobs) on private model copies with the
// batching executor detached, so mirrored work never rides the serving
// scheduler's micro-batches either.
//
// Re-running the active model — rather than reusing the served result —
// is what makes decision-level comparison free for the serving path:
// explain artifacts cost per-point allocations and route queries, so
// the live request never collects them; determinism guarantees the
// re-run reproduces the served bytes exactly (the capture/replay suite
// pins this), so digest equality against the candidate still means
// "the client would have seen identical bytes".
type Mirror struct {
	cfg Config

	jobs    chan Job
	pending atomic.Int64 // enqueued but not yet fully processed
	wg      sync.WaitGroup

	stopOnce sync.Once
	stopCh   chan struct{}

	mu        sync.Mutex
	seq       int64
	streamSeq int64
}

// Config parameterizes a Mirror.
type Config struct {
	// Candidate returns the current candidate model, or nil when none
	// is loaded (sampling is skipped entirely then).
	Candidate func() *core.Model
	// Sample is the fraction of completed requests to mirror, in [0,1]
	// (default 1). Sampling is deterministic: the seq*rate
	// integer-crossing rule, same as request capture.
	Sample float64
	// Workers / Queue bound the pool (defaults 2 / 256).
	Workers int
	Queue   int
	// Timeout caps each replayed match (default 30s).
	Timeout time.Duration
	// Encode produces the wire bytes of a batch result — the serving
	// layer passes its exact response encoding so digest equality is
	// defined over client-visible bytes.
	Encode func(*hmm.Result) ([]byte, error)
	// EncodeStream does the same for a finished streaming matcher.
	EncodeStream func(*hmm.StreamMatcher) ([]byte, error)
	// Stats receives every comparison (required).
	Stats *Stats
	// OnCompared, when set, observes every completed comparison (the
	// serving layer writes disagreements to the capture file; tests
	// synchronize on it). Called from worker goroutines.
	OnCompared func(job Job, cmp *Comparison)
}

// Job is one mirrored request.
type Job struct {
	// Trajectory is the raw (pre-sanitization) trajectory; both models
	// sanitize it under their own configuration, exactly as the live
	// request did.
	Trajectory traj.CellTrajectory
	// Model is the effective active model the live request ran under
	// (per-request policy overrides already applied).
	Model *core.Model
	// Stream marks a finished-session replay with the session's emit
	// lag; batch jobs leave both zero.
	Stream bool
	Lag    int
	// Meta is an opaque caller payload (the serving layer attaches the
	// original request for capture writing).
	Meta any
}

func (c Config) withDefaults() Config {
	if c.Sample < 0 {
		c.Sample = 0
	}
	if c.Sample > 1 || c.Sample == 0 {
		c.Sample = 1
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// NewMirror starts the worker pool and activates cfg.Stats as the
// process's live shadow aggregate (the derived agreement gauge).
func NewMirror(cfg Config) *Mirror {
	cfg = cfg.withDefaults()
	if cfg.Stats == nil {
		cfg.Stats = NewStats()
	}
	cfg.Stats.Activate()
	m := &Mirror{
		cfg:    cfg,
		jobs:   make(chan Job, cfg.Queue),
		stopCh: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Stats exposes the aggregate this mirror records into.
func (m *Mirror) Stats() *Stats { return m.cfg.Stats }

// sample applies the deterministic integer-crossing rule to one of the
// two independent sampling sequences.
func (m *Mirror) sample(seq *int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	*seq++
	return int64(float64(*seq)*m.cfg.Sample) != int64(float64(*seq-1)*m.cfg.Sample)
}

// Offer mirrors one completed batch match: sampled deterministically,
// skipped outright when no candidate is loaded, dropped (and counted)
// when the queue is full. Never blocks.
func (m *Mirror) Offer(job Job) {
	if m == nil || m.cfg.Candidate() == nil {
		return
	}
	if !m.sample(&m.seq) {
		return
	}
	m.enqueue(job)
}

// SampleSession decides (deterministically, on its own sequence)
// whether a newly created streaming session should be mirrored at
// finish. Sessions sampled here buffer their points and call
// OfferStream when they finish.
func (m *Mirror) SampleSession() bool {
	if m == nil || m.cfg.Candidate() == nil {
		return false
	}
	return m.sample(&m.streamSeq)
}

// OfferStream mirrors one finished streaming session (already sampled
// at create time). Never blocks.
func (m *Mirror) OfferStream(job Job) {
	if m == nil || len(job.Trajectory) == 0 || m.cfg.Candidate() == nil {
		return
	}
	job.Stream = true
	m.enqueue(job)
}

func (m *Mirror) enqueue(job Job) {
	select {
	case <-m.stopCh:
		return
	default:
	}
	m.pending.Add(1)
	select {
	case m.jobs <- job:
	default:
		m.pending.Add(-1)
		m.cfg.Stats.RecordDrop()
	}
}

// Drain blocks until every enqueued job has been processed or ctx
// expires (the server's drain path flushes shadow work after in-flight
// matches finish, bounded by the drain deadline).
func (m *Mirror) Drain(ctx context.Context) error {
	if m == nil {
		return nil
	}
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for m.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// Stop halts the workers. Jobs still queued are discarded; call Drain
// first for a loss-free shutdown.
func (m *Mirror) Stop() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() { close(m.stopCh) })
	m.wg.Wait()
}

func (m *Mirror) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stopCh:
			return
		case job := <-m.jobs:
			m.process(job)
			m.pending.Add(-1)
		}
	}
}

// shadowCopy returns a private copy of model with cfg applied and the
// batching executor detached (shadow work must not share the serving
// scheduler), explain on for batch jobs, tracing always off.
func shadowCopy(model *core.Model, explain bool) *core.Model {
	cp := *model
	cp.Cfg.Trace = false
	cp.Cfg.Explain = explain
	cp.Exec = nil
	return &cp
}

func (m *Mirror) process(job Job) {
	cand := m.cfg.Candidate()
	if cand == nil {
		return
	}
	if job.Stream {
		m.processStream(job, cand)
		return
	}
	active := shadowCopy(job.Model, true)
	candidate := shadowCopy(cand, true)
	// The candidate runs under the active request's effective matching
	// configuration (break/sanitize policies, K, shortcuts) — only the
	// weights differ.
	candidate.Cfg = active.Cfg

	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.Timeout)
	defer cancel()
	aRes, err := active.MatchContext(ctx, job.Trajectory)
	if err != nil {
		// The live request answered; a failing re-run is a mirror-side
		// fault (timeout under shadow load), not candidate evidence.
		m.cfg.Stats.RecordError()
		return
	}
	aBody, err := m.cfg.Encode(aRes)
	if err != nil {
		m.cfg.Stats.RecordError()
		return
	}

	t0 := time.Now()
	cRes, cErr := candidate.MatchContext(ctx, job.Trajectory)
	lat := time.Since(t0)
	var cmp Comparison
	if cErr != nil {
		cmp = Comparison{
			Points:         len(aRes.Matched),
			ActiveDegraded: aRes.Degraded > 0,
			ActiveGapped:   len(aRes.Gaps) > 0,
			CandErr:        cErr,
			ActiveRes:      aRes,
			ActiveBody:     aBody,
		}
	} else {
		cBody, err := m.cfg.Encode(cRes)
		if err != nil {
			m.cfg.Stats.RecordError()
			return
		}
		cmp = Compare(aRes, cRes, aBody, cBody)
	}
	cmp.CandLatency = lat
	m.cfg.Stats.Record(&cmp)
	if m.cfg.OnCompared != nil {
		m.cfg.OnCompared(job, &cmp)
	}
}

// processStream replays a finished session's points through fresh
// fixed-lag matchers from both models and compares the finalized
// state. Streaming runs without explain (the StreamMatcher has no
// explain path), so the comparison carries segment agreement, score
// deltas, digest equality, and quality flags, but no margins.
func (m *Mirror) processStream(job Job, cand *core.Model) {
	active := shadowCopy(job.Model, false)
	candidate := shadowCopy(cand, false)
	candidate.Cfg = active.Cfg

	asm := active.NewStream(job.Lag)
	feedStream(asm, job.Trajectory)
	aRes := StreamResult(asm)
	aBody, err := m.cfg.EncodeStream(asm)
	if err != nil {
		m.cfg.Stats.RecordError()
		return
	}

	t0 := time.Now()
	csm := candidate.NewStream(job.Lag)
	feedStream(csm, job.Trajectory)
	lat := time.Since(t0)
	cRes := StreamResult(csm)
	cBody, err := m.cfg.EncodeStream(csm)
	if err != nil {
		m.cfg.Stats.RecordError()
		return
	}

	cmp := Compare(aRes, cRes, aBody, cBody)
	cmp.Stream = true
	cmp.CandLatency = lat
	m.cfg.Stats.Record(&cmp)
	if m.cfg.OnCompared != nil {
		m.cfg.OnCompared(job, &cmp)
	}
}

// feedStream pushes the buffered points and flushes. A push error
// stops the feed for that matcher (mirroring how the live session
// absorbed points up to the failure) but still flushes what was
// absorbed.
func feedStream(sm *hmm.StreamMatcher, pts traj.CellTrajectory) {
	for _, p := range pts {
		if _, err := sm.Push(p); err != nil {
			break
		}
	}
	sm.Flush()
}
