package shadow

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Shadow telemetry. Counters and histograms are cumulative across
// candidate loads (Prometheus convention: rates come from deltas);
// the Stats aggregates below reset on every candidate load so the
// promotion verdict reflects only the candidate currently loaded.
var (
	obsSamples        = obs.Default.Counter("shadow.samples")
	obsStreamSamples  = obs.Default.Counter("shadow.samples.stream")
	obsDropped        = obs.Default.Counter("shadow.dropped")
	obsMirrorErrors   = obs.Default.Counter("shadow.mirror.errors")
	obsPointsCompared = obs.Default.Counter("shadow.points.compared")
	obsPointsAgreed   = obs.Default.Counter("shadow.points.agreed")
	obsDigestMatch    = obs.Default.Counter("shadow.digest.matches")
	obsDigestMismatch = obs.Default.Counter("shadow.digest.mismatches")
	obsDisagreements  = obs.Default.Counter("shadow.disagreements")
	obsCandFailures   = obs.Default.Counter("shadow.candidate.failures")
	obsScoreDelta     = obs.Default.Histogram("shadow.score.delta", obs.UnitBuckets)
	obsMarginDelta    = obs.Default.Histogram("shadow.margin.delta", marginDeltaBuckets)
	obsCandSeconds    = obs.Default.Histogram("shadow.candidate.seconds", obs.LatencyBuckets)
)

// marginDeltaBuckets cover absolute margin deltas in nats; explain
// margins are capped at ±50, so deltas land in [0, 100].
var marginDeltaBuckets = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}

// activeStats is the Stats instance behind the scrape-time
// lhmm_shadow_agreement_rate derived gauge: the mirror activates its
// stats on creation, so the gauge tracks the live server's candidate.
// Registered at package init so the metric-names lint and the
// /metrics series set always include it (0.0 until a mirror exists).
var activeStats atomic.Pointer[Stats]

func init() {
	obs.Default.Derived("shadow.agreement.rate", func() float64 {
		s := activeStats.Load()
		if s == nil {
			return 0
		}
		r, _ := s.Agreement()
		return r
	})
}

// Stats aggregates comparisons for one candidate model. Safe for
// concurrent use. Every Record also feeds the cumulative shadow.*
// instruments on obs.Default.
type Stats struct {
	mu sync.Mutex

	samples       int64
	streamSamples int64
	errors        int64
	dropped       int64
	candFailures  int64

	points int64
	agreed int64

	digestMatch    int64
	digestMismatch int64
	disagreements  int64

	activeDegraded int64
	candDegraded   int64
	activeGapped   int64
	candGapped     int64

	scoreDeltaN   int64
	scoreDeltaSum float64
	scoreDeltaMax float64

	marginDeltaN      int64
	marginDeltaSum    float64
	marginDeltaAbsSum float64

	lat    []int64 // per-obs.LatencyBuckets counts; candidate match latency
	latSum float64
}

// NewStats creates an empty aggregate.
func NewStats() *Stats {
	return &Stats{lat: make([]int64, len(obs.LatencyBuckets)+1)}
}

// Activate makes this instance the one the lhmm_shadow_agreement_rate
// derived gauge reads (latest wins — one live mirror per process).
func (s *Stats) Activate() { activeStats.Store(s) }

// Reset clears the per-candidate aggregates (a new candidate was
// loaded; its verdict starts fresh). Cumulative obs counters are left
// alone.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples, s.streamSamples, s.errors, s.dropped, s.candFailures = 0, 0, 0, 0, 0
	s.points, s.agreed = 0, 0
	s.digestMatch, s.digestMismatch, s.disagreements = 0, 0, 0
	s.activeDegraded, s.candDegraded, s.activeGapped, s.candGapped = 0, 0, 0, 0
	s.scoreDeltaN, s.scoreDeltaSum, s.scoreDeltaMax = 0, 0, 0
	s.marginDeltaN, s.marginDeltaSum, s.marginDeltaAbsSum = 0, 0, 0
	for i := range s.lat {
		s.lat[i] = 0
	}
	s.latSum = 0
}

// Record folds one comparison into the aggregates and the cumulative
// instruments.
func (s *Stats) Record(cmp *Comparison) {
	obsSamples.Inc()
	if cmp.Stream {
		obsStreamSamples.Inc()
	}
	obsPointsCompared.Add(int64(cmp.Points))
	obsPointsAgreed.Add(int64(cmp.Agreed))
	if cmp.CandErr == nil {
		if cmp.DigestMatch {
			obsDigestMatch.Inc()
		} else {
			obsDigestMismatch.Inc()
		}
	} else {
		obsCandFailures.Inc()
	}
	if cmp.Disagrees() {
		obsDisagreements.Inc()
	}
	if cmp.ScoreDeltas > 0 {
		obsScoreDelta.Observe(cmp.SumAbsScoreDelta / float64(cmp.ScoreDeltas))
	}
	if cmp.MarginDeltas > 0 {
		obsMarginDelta.Observe(cmp.SumAbsMarginDelta / float64(cmp.MarginDeltas))
	}
	if cmp.CandLatency > 0 {
		obsCandSeconds.Observe(cmp.CandLatency.Seconds())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples++
	if cmp.Stream {
		s.streamSamples++
	}
	s.points += int64(cmp.Points)
	s.agreed += int64(cmp.Agreed)
	if cmp.CandErr == nil {
		if cmp.DigestMatch {
			s.digestMatch++
		} else {
			s.digestMismatch++
		}
	} else {
		s.candFailures++
	}
	if cmp.Disagrees() {
		s.disagreements++
	}
	if cmp.ActiveDegraded {
		s.activeDegraded++
	}
	if cmp.CandDegraded {
		s.candDegraded++
	}
	if cmp.ActiveGapped {
		s.activeGapped++
	}
	if cmp.CandGapped {
		s.candGapped++
	}
	s.scoreDeltaN += int64(cmp.ScoreDeltas)
	s.scoreDeltaSum += cmp.SumAbsScoreDelta
	if cmp.MaxAbsScoreDelta > s.scoreDeltaMax {
		s.scoreDeltaMax = cmp.MaxAbsScoreDelta
	}
	s.marginDeltaN += int64(cmp.MarginDeltas)
	s.marginDeltaSum += cmp.SumMarginDelta
	s.marginDeltaAbsSum += cmp.SumAbsMarginDelta
	if cmp.CandLatency > 0 {
		v := cmp.CandLatency.Seconds()
		i := 0
		for i < len(obs.LatencyBuckets) && v > obs.LatencyBuckets[i] {
			i++
		}
		s.lat[i]++
		s.latSum += v
	}
}

// RecordDrop counts a sampled request the mirror had to drop (queue
// full — the serving path is never allowed to wait on shadow work).
func (s *Stats) RecordDrop() {
	obsDropped.Inc()
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

// RecordError counts a mirror-side failure that prevented a comparison
// (the active re-run failing, an encoder error).
func (s *Stats) RecordError() {
	obsMirrorErrors.Inc()
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

// Agreement returns the per-point agreement rate and the number of
// samples behind it. With zero compared points the rate is 1 (no
// evidence of divergence).
func (s *Stats) Agreement() (rate float64, samples int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.points == 0 {
		return 1, s.samples
	}
	return float64(s.agreed) / float64(s.points), s.samples
}

// Thresholds gate the promotion-readiness verdict. Zero values take
// the documented defaults.
type Thresholds struct {
	// MinSamples gates the verdict: below it the report says
	// insufficient_data (default 50).
	MinSamples int `json:"min_samples"`
	// MinAgreement is the minimum per-point agreement rate for a ready
	// verdict (default 0.98).
	MinAgreement float64 `json:"min_agreement"`
	// MaxQualityRegression is the maximum allowed increase of the
	// candidate's degraded/gap/failure rates over the active model's
	// (default 0.05).
	MaxQualityRegression float64 `json:"max_quality_regression"`
}

func (t Thresholds) withDefaults() Thresholds {
	if t.MinSamples <= 0 {
		t.MinSamples = 50
	}
	if t.MinAgreement <= 0 {
		t.MinAgreement = 0.98
	}
	if t.MaxQualityRegression <= 0 {
		t.MaxQualityRegression = 0.05
	}
	return t
}

// Verdict values of a Report.
const (
	VerdictReady        = "ready"
	VerdictNotReady     = "not_ready"
	VerdictInsufficient = "insufficient_data"
	VerdictDisabled     = "disabled"
)

// QualityRates are per-model windowed quality fractions over the
// mirrored sample set.
type QualityRates struct {
	DegradedRate float64 `json:"degraded_rate"`
	GapRate      float64 `json:"gap_rate"`
	// FailureRate is the fraction of mirrored requests the model failed
	// to answer (always 0 for the active model — it answered them live).
	FailureRate float64 `json:"failure_rate"`
}

// LatencyQuantiles summarize the candidate's match latency.
type LatencyQuantiles struct {
	P50S  float64 `json:"p50_s"`
	P95S  float64 `json:"p95_s"`
	P99S  float64 `json:"p99_s"`
	MeanS float64 `json:"mean_s"`
}

// Report is the GET /v1/shadow body (and the `lhmm replay -against`
// output): the aggregate comparison plus the promotion verdict.
type Report struct {
	// Enabled reports whether a candidate model is loaded; the serving
	// layer fills it together with the provenance fields.
	Enabled   bool   `json:"enabled"`
	ModelPath string `json:"model_path,omitempty"`
	LoadedAt  string `json:"loaded_at,omitempty"`

	Samples       int64 `json:"samples"`
	StreamSamples int64 `json:"stream_samples,omitempty"`
	Errors        int64 `json:"errors,omitempty"`
	Dropped       int64 `json:"dropped,omitempty"`

	PointsCompared int64   `json:"points_compared"`
	PointsAgreed   int64   `json:"points_agreed"`
	AgreementRate  float64 `json:"agreement_rate"`

	DigestMatches   int64   `json:"digest_matches"`
	DigestMismatch  int64   `json:"digest_mismatches"`
	DigestMatchRate float64 `json:"digest_match_rate"`
	Disagreements   int64   `json:"disagreements"`

	MeanAbsScoreDelta  float64 `json:"mean_abs_score_delta"`
	MaxAbsScoreDelta   float64 `json:"max_abs_score_delta"`
	MeanMarginDelta    float64 `json:"mean_margin_delta"`
	MeanAbsMarginDelta float64 `json:"mean_abs_margin_delta"`

	Active    QualityRates `json:"active"`
	Candidate QualityRates `json:"candidate"`

	CandidateLatency LatencyQuantiles `json:"candidate_latency"`

	// Verdict is "ready", "not_ready", "insufficient_data", or
	// "disabled"; Reasons lists the violated thresholds behind a
	// not_ready verdict.
	Verdict    string     `json:"verdict"`
	Reasons    []string   `json:"reasons,omitempty"`
	Thresholds Thresholds `json:"thresholds"`
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Report computes the aggregate view and the promotion verdict under
// the given thresholds.
func (s *Stats) Report(t Thresholds) Report {
	t = t.withDefaults()
	s.mu.Lock()
	defer s.mu.Unlock()

	r := Report{
		Samples:        s.samples,
		StreamSamples:  s.streamSamples,
		Errors:         s.errors,
		Dropped:        s.dropped,
		PointsCompared: s.points,
		PointsAgreed:   s.agreed,
		DigestMatches:  s.digestMatch,
		DigestMismatch: s.digestMismatch,
		Disagreements:  s.disagreements,
		Thresholds:     t,
	}
	r.AgreementRate = 1
	if s.points > 0 {
		r.AgreementRate = float64(s.agreed) / float64(s.points)
	}
	if n := s.digestMatch + s.digestMismatch; n > 0 {
		r.DigestMatchRate = float64(s.digestMatch) / float64(n)
	}
	if s.scoreDeltaN > 0 {
		r.MeanAbsScoreDelta = s.scoreDeltaSum / float64(s.scoreDeltaN)
	}
	r.MaxAbsScoreDelta = s.scoreDeltaMax
	if s.marginDeltaN > 0 {
		r.MeanMarginDelta = s.marginDeltaSum / float64(s.marginDeltaN)
		r.MeanAbsMarginDelta = s.marginDeltaAbsSum / float64(s.marginDeltaN)
	}
	r.Active = QualityRates{
		DegradedRate: ratio(s.activeDegraded, s.samples),
		GapRate:      ratio(s.activeGapped, s.samples),
	}
	r.Candidate = QualityRates{
		DegradedRate: ratio(s.candDegraded, s.samples),
		GapRate:      ratio(s.candGapped, s.samples),
		FailureRate:  ratio(s.candFailures, s.samples),
	}
	r.CandidateLatency = LatencyQuantiles{
		P50S: obs.BucketQuantile(obs.LatencyBuckets, s.lat, 0.50),
		P95S: obs.BucketQuantile(obs.LatencyBuckets, s.lat, 0.95),
		P99S: obs.BucketQuantile(obs.LatencyBuckets, s.lat, 0.99),
	}
	if n := countLat(s.lat); n > 0 {
		r.CandidateLatency.MeanS = s.latSum / float64(n)
	}

	if s.samples < int64(t.MinSamples) {
		r.Verdict = VerdictInsufficient
		r.Reasons = append(r.Reasons, fmt.Sprintf("samples %d < min_samples %d", s.samples, t.MinSamples))
		return r
	}
	if r.AgreementRate < t.MinAgreement {
		r.Reasons = append(r.Reasons, fmt.Sprintf("agreement_rate %.4f < min_agreement %.4f", r.AgreementRate, t.MinAgreement))
	}
	if d := r.Candidate.DegradedRate - r.Active.DegradedRate; d > t.MaxQualityRegression {
		r.Reasons = append(r.Reasons, fmt.Sprintf("degraded_rate regression %.4f > %.4f", d, t.MaxQualityRegression))
	}
	if d := r.Candidate.GapRate - r.Active.GapRate; d > t.MaxQualityRegression {
		r.Reasons = append(r.Reasons, fmt.Sprintf("gap_rate regression %.4f > %.4f", d, t.MaxQualityRegression))
	}
	if r.Candidate.FailureRate > t.MaxQualityRegression {
		r.Reasons = append(r.Reasons, fmt.Sprintf("candidate failure_rate %.4f > %.4f", r.Candidate.FailureRate, t.MaxQualityRegression))
	}
	if len(r.Reasons) > 0 {
		r.Verdict = VerdictNotReady
	} else {
		r.Verdict = VerdictReady
	}
	return r
}

func countLat(lat []int64) int64 {
	var n int64
	for _, c := range lat {
		n += c
	}
	return n
}
