// Package mrg implements the paper's multi-relational representation
// learning (§IV-B): construction of the heterogeneous graph over cell
// towers and road segments with its three relation types —
// co-occurrence (CO), sequentiality (SQ), topology (TP) — and the
// Het-Graph Encoder, an R-GCN-style message-passing network (Eqs. 4–5)
// that embeds towers and roads in a shared space.
package mrg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cellular"
	"repro/internal/nn"
	"repro/internal/roadnet"
	"repro/internal/traj"
)

// Graph is the multi-relational graph 𝒢 = (𝒱_e, 𝒱_ct, ℰ). Nodes are
// indexed globally: towers occupy [0, NumTowers), road segments occupy
// [NumTowers, NumTowers+NumSegs).
type Graph struct {
	NumTowers int
	NumSegs   int

	// Row-normalized adjacency per relation (messages flow along rows:
	// row i lists the senders j whose embeddings node i averages), and
	// the transposes needed by backprop.
	CO, SQ, TP    *nn.Sparse
	COt, SQt, TPt *nn.Sparse

	// coCount holds the raw co-occurrence counts keyed by
	// (tower, segment), the explicit feature of Eq. 8.
	coCount map[coKey]float64
	maxCo   float64

	// mergedTriples holds the union of all relation edges before
	// normalization, kept for the homogeneous-GNN ablation.
	mergedTriples []nn.Triple

	// topCo maps each tower to its road segments sorted by descending
	// co-occurrence count — the knowledge that lets LHMM propose
	// relevant-but-far candidate roads.
	topCo map[cellular.TowerID][]roadnet.SegmentID
}

type coKey struct {
	tower cellular.TowerID
	seg   roadnet.SegmentID
}

// NumNodes returns the total node count |𝒱|.
func (g *Graph) NumNodes() int { return g.NumTowers + g.NumSegs }

// TowerNode maps a tower id to its global node index.
func (g *Graph) TowerNode(id cellular.TowerID) int { return int(id) }

// SegNode maps a segment id to its global node index.
func (g *Graph) SegNode(id roadnet.SegmentID) int { return g.NumTowers + int(id) }

// CoOccurrence returns the raw co-occurrence count between a tower and
// a segment observed in the training trips.
func (g *Graph) CoOccurrence(t cellular.TowerID, s roadnet.SegmentID) float64 {
	return g.coCount[coKey{t, s}]
}

// CoOccurrenceNorm returns the co-occurrence count normalized to [0,1]
// by the maximum observed count — the batch-normalized explicit feature
// of Eq. 8.
func (g *Graph) CoOccurrenceNorm(t cellular.TowerID, s roadnet.SegmentID) float64 {
	if g.maxCo == 0 {
		return 0
	}
	return g.coCount[coKey{t, s}] / g.maxCo
}

// TopCoRoads returns up to k road segments most frequently co-occurring
// with the tower in the training data, by descending count.
func (g *Graph) TopCoRoads(t cellular.TowerID, k int) []roadnet.SegmentID {
	segs := g.topCo[t]
	if k > len(segs) {
		k = len(segs)
	}
	return segs[:k]
}

// BuildGraph constructs the multi-relational graph from the road
// network, tower network, and historical (training) trips with ground
// truth:
//
//   - CO: for each road segment e on a trip's traveled path, the
//     trajectory point whose tower is closest to e co-occurs with e
//     (weight = number of such observations across trips). Edges are
//     added in both directions so towers and roads exchange messages.
//   - SQ: consecutive trajectory points' towers are linked (both
//     directions, weighted by frequency).
//   - TP: road segments adjacent on the network (e_i.To == e_j.From)
//     are linked.
func BuildGraph(net *roadnet.Network, cells *cellular.Net, trips []*traj.Trip) (*Graph, error) {
	if net == nil || cells == nil {
		return nil, fmt.Errorf("mrg: nil network")
	}
	g := &Graph{
		NumTowers: cells.NumTowers(),
		NumSegs:   net.NumSegments(),
		coCount:   make(map[coKey]float64),
	}
	n := g.NumNodes()

	var coTriples, sqTriples, tpTriples []nn.Triple

	// CO and SQ from trips.
	sqCount := make(map[[2]cellular.TowerID]float64)
	for _, tr := range trips {
		if len(tr.Cell) == 0 {
			continue
		}
		for _, sid := range tr.Path {
			seg := net.Segment(sid)
			mid := seg.Midpoint()
			// Closest trajectory point (by its tower position) to e.
			best, bestD := -1, math.Inf(1)
			for i, cp := range tr.Cell {
				if d := cells.Tower(cp.Tower).P.DistSq(mid); d < bestD {
					best, bestD = i, d
				}
			}
			if best >= 0 {
				g.coCount[coKey{tr.Cell[best].Tower, sid}]++
			}
		}
		for i := 1; i < len(tr.Cell); i++ {
			a, b := tr.Cell[i-1].Tower, tr.Cell[i].Tower
			if a == b {
				continue
			}
			sqCount[[2]cellular.TowerID{a, b}]++
		}
	}
	for k, w := range g.coCount {
		if w > g.maxCo {
			g.maxCo = w
		}
		tn, sn := g.TowerNode(k.tower), g.SegNode(k.seg)
		coTriples = append(coTriples,
			nn.Triple{Row: tn, Col: sn, Val: w},
			nn.Triple{Row: sn, Col: tn, Val: w},
		)
	}
	for k, w := range sqCount {
		a, b := g.TowerNode(k[0]), g.TowerNode(k[1])
		sqTriples = append(sqTriples,
			nn.Triple{Row: a, Col: b, Val: w},
			nn.Triple{Row: b, Col: a, Val: w},
		)
	}

	// TP from network adjacency.
	for i := 0; i < net.NumSegments(); i++ {
		sid := roadnet.SegmentID(i)
		for _, nx := range net.Next(sid) {
			if nx == sid {
				continue
			}
			tpTriples = append(tpTriples, nn.Triple{
				Row: g.SegNode(sid), Col: g.SegNode(nx), Val: 1,
			})
		}
	}

	// Per-tower co-occurring roads, by descending count.
	g.topCo = make(map[cellular.TowerID][]roadnet.SegmentID)
	for k := range g.coCount {
		g.topCo[k.tower] = append(g.topCo[k.tower], k.seg)
	}
	for tw, segs := range g.topCo {
		tw := tw
		sort.Slice(segs, func(a, b int) bool {
			ca, cb := g.coCount[coKey{tw, segs[a]}], g.coCount[coKey{tw, segs[b]}]
			if ca != cb {
				return ca > cb
			}
			return segs[a] < segs[b]
		})
	}

	g.mergedTriples = make([]nn.Triple, 0, len(coTriples)+len(sqTriples)+len(tpTriples))
	g.mergedTriples = append(g.mergedTriples, coTriples...)
	g.mergedTriples = append(g.mergedTriples, sqTriples...)
	g.mergedTriples = append(g.mergedTriples, tpTriples...)

	var err error
	if g.CO, err = nn.NewSparse(n, n, coTriples); err != nil {
		return nil, fmt.Errorf("mrg: CO: %w", err)
	}
	if g.SQ, err = nn.NewSparse(n, n, sqTriples); err != nil {
		return nil, fmt.Errorf("mrg: SQ: %w", err)
	}
	if g.TP, err = nn.NewSparse(n, n, tpTriples); err != nil {
		return nil, fmt.Errorf("mrg: TP: %w", err)
	}
	g.CO.RowNormalize()
	g.SQ.RowNormalize()
	g.TP.RowNormalize()
	if g.COt, err = g.CO.Transpose(); err != nil {
		return nil, fmt.Errorf("mrg: CO: %w", err)
	}
	if g.SQt, err = g.SQ.Transpose(); err != nil {
		return nil, fmt.Errorf("mrg: SQ: %w", err)
	}
	if g.TPt, err = g.TP.Transpose(); err != nil {
		return nil, fmt.Errorf("mrg: TP: %w", err)
	}
	return g, nil
}

// Merged returns a single row-normalized adjacency combining all three
// relations, plus its transpose — the homogeneous-GNN ablation (LHMM-H)
// input, which discards relation types.
func (g *Graph) Merged() (*nn.Sparse, *nn.Sparse, error) {
	m, err := nn.NewSparse(g.NumNodes(), g.NumNodes(), g.mergedTriples)
	if err != nil {
		return nil, nil, fmt.Errorf("mrg: merged: %w", err)
	}
	m.RowNormalize()
	mt, err := m.Transpose()
	if err != nil {
		return nil, nil, fmt.Errorf("mrg: merged: %w", err)
	}
	return m, mt, nil
}
