package mrg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/nn"
	"repro/internal/roadnet"
	"repro/internal/synth"
	"repro/internal/traj"
)

// testWorld builds a small deterministic city with a handful of trips.
func testWorld(t testing.TB) (*traj.Dataset, []*traj.Trip) {
	t.Helper()
	cfg := synth.DatasetConfig{
		Seed: 42,
		City: synth.CityConfig{
			Name:          "mrg-test",
			HalfSize:      2000,
			BlockSize:     250,
			CoreRadius:    1000,
			NodeJitter:    15,
			EdgeDropCore:  0.05,
			EdgeDropRural: 0.3,
			ArterialEvery: 4,
			TowerCount:    40,
		},
		Trips: synth.TripConfig{
			Count:            15,
			MinLen:           1200,
			MaxLen:           3500,
			GPSInterval:      20,
			GPSNoise:         8,
			CellMeanInterval: 40,
			Serving:          cellular.DefaultServingModel(),
		},
		Preprocess: true,
		Filter:     traj.DefaultFilterConfig(),
	}
	d, err := synth.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.TrainTrips()
}

func TestBuildGraphValidation(t *testing.T) {
	if _, err := BuildGraph(nil, nil, nil); err == nil {
		t.Error("nil networks did not error")
	}
}

func TestBuildGraphStructure(t *testing.T) {
	d, trips := testWorld(t)
	g, err := BuildGraph(d.Net, d.Cells, trips)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != d.Cells.NumTowers()+d.Net.NumSegments() {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	if g.CO.NNZ() == 0 {
		t.Error("no co-occurrence edges")
	}
	if g.SQ.NNZ() == 0 {
		t.Error("no sequentiality edges")
	}
	if g.TP.NNZ() == 0 {
		t.Error("no topology edges")
	}
	// Node index mapping disjoint and in range.
	tn := g.TowerNode(cellular.TowerID(3))
	sn := g.SegNode(roadnet.SegmentID(5))
	if tn < 0 || tn >= g.NumTowers {
		t.Errorf("TowerNode = %d", tn)
	}
	if sn < g.NumTowers || sn >= g.NumNodes() {
		t.Errorf("SegNode = %d", sn)
	}
	// Co-occurrence counts positive for every segment on a training
	// trip path paired with its closest tower.
	var anyCo bool
	for _, tr := range trips {
		for _, sid := range tr.Path {
			for _, cp := range tr.Cell {
				if g.CoOccurrence(cp.Tower, sid) > 0 {
					anyCo = true
				}
			}
		}
	}
	if !anyCo {
		t.Error("no positive co-occurrence counts on trip paths")
	}
	// Normalized co-occurrence in [0,1].
	for _, tr := range trips {
		for _, sid := range tr.Path {
			for _, cp := range tr.Cell {
				v := g.CoOccurrenceNorm(cp.Tower, sid)
				if v < 0 || v > 1 {
					t.Fatalf("CoOccurrenceNorm = %v", v)
				}
			}
		}
	}
}

func TestGraphRowsNormalized(t *testing.T) {
	d, trips := testWorld(t)
	g, err := BuildGraph(d.Net, d.Cells, trips)
	if err != nil {
		t.Fatal(err)
	}
	// Multiplying a ones-vector: every row sums to 1 or 0.
	ones := nn.NewMat(g.NumNodes(), 1)
	ones.Fill(1)
	for _, s := range []*nn.Sparse{g.CO, g.SQ, g.TP} {
		dst := nn.NewMat(g.NumNodes(), 1)
		s.MulInto(dst, ones)
		for i, v := range dst.W {
			if v != 0 && math.Abs(v-1) > 1e-9 {
				t.Fatalf("row %d sums to %v", i, v)
			}
		}
	}
}

func TestEncoderForwardShapes(t *testing.T) {
	d, trips := testWorld(t)
	g, err := BuildGraph(d.Net, d.Cells, trips)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, mode := range []EncoderMode{HetGNN, HomoGNN, MLPOnly} {
		enc, err := NewEncoder(g, mode, 8, 2, rng)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		tp := nn.NewTape()
		h := enc.Forward(tp, g)
		if h.R() != g.NumNodes() || h.C() != 8 {
			t.Errorf("%v: embedding shape %d×%d", mode, h.R(), h.C())
		}
		if len(enc.Params()) == 0 {
			t.Errorf("%v: no params", mode)
		}
		if mode.String() == "" {
			t.Error("empty mode name")
		}
	}
	if _, err := NewEncoder(g, HetGNN, 0, 2, rng); err == nil {
		t.Error("zero dim did not error")
	}
}

func TestEncoderGradientsFlow(t *testing.T) {
	d, trips := testWorld(t)
	g, err := BuildGraph(d.Net, d.Cells, trips)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, mode := range []EncoderMode{HetGNN, HomoGNN, MLPOnly} {
		enc, err := NewEncoder(g, mode, 6, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		tp := nn.NewTape()
		h := enc.Forward(tp, g)
		loss := tp.SumAll(tp.Mul(h, h))
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		// Every parameter receives some gradient (ReLU may zero a few,
		// but not all).
		var withGrad int
		for _, p := range enc.Params() {
			if p.Grad.MaxAbs() > 0 {
				withGrad++
			}
			p.ZeroGrad()
		}
		if withGrad < len(enc.Params())/2 {
			t.Errorf("%v: only %d/%d params got gradient", mode, withGrad, len(enc.Params()))
		}
	}
}

// The encoder must place co-occurring tower/road pairs closer than
// random pairs after brief contrastive training — the property the
// downstream learners rely on.
func TestEncoderLearnsCoOccurrence(t *testing.T) {
	d, trips := testWorld(t)
	g, err := BuildGraph(d.Net, d.Cells, trips)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	enc, err := NewEncoder(g, HetGNN, 8, 2, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Collect positive (co-occurring) pairs and random negatives.
	type pair struct{ a, b int }
	var pos []pair
	for _, tr := range trips {
		for _, sid := range tr.Path {
			for _, cp := range tr.Cell {
				if g.CoOccurrence(cp.Tower, sid) > 0 {
					pos = append(pos, pair{g.TowerNode(cp.Tower), g.SegNode(sid)})
				}
			}
		}
	}
	if len(pos) == 0 {
		t.Skip("no positive pairs in tiny world")
	}
	if len(pos) > 32 {
		pos = pos[:32]
	}
	opt := nn.NewAdam()
	opt.LR = 0.01
	for iter := 0; iter < 80; iter++ {
		tp := nn.NewTape()
		h := enc.Forward(tp, g)
		// Pull positives together, push a random pair apart.
		var loss *nn.T
		for _, pr := range pos[:min(len(pos), 32)] {
			a := tp.Gather(h, []int{pr.a})
			b := tp.Gather(h, []int{pr.b})
			diff := tp.Sub(a, b)
			l := tp.SumAll(tp.Mul(diff, diff))
			na := tp.Gather(h, []int{rng.Intn(g.NumNodes())})
			nb := tp.Gather(h, []int{rng.Intn(g.NumNodes())})
			nd := tp.Sub(na, nb)
			l = tp.Sub(l, tp.Scale(tp.SumAll(tp.Mul(nd, nd)), 0.1))
			if loss == nil {
				loss = l
			} else {
				loss = tp.Add(loss, l)
			}
		}
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		nn.ClipGradNorm(enc.Params(), 5)
		opt.Step(enc.Params())
	}
	// Positive pairs now closer on average than random pairs.
	tp := nn.NewTape()
	h := enc.Forward(tp, g).Val
	distOf := func(a, b int) float64 {
		var s float64
		ra, rb := h.Row(a), h.Row(b)
		for i := range ra {
			s += (ra[i] - rb[i]) * (ra[i] - rb[i])
		}
		return math.Sqrt(s)
	}
	var posSum, negSum float64
	negRng := rand.New(rand.NewSource(4))
	for _, pr := range pos {
		posSum += distOf(pr.a, pr.b)
		negSum += distOf(negRng.Intn(g.NumNodes()), negRng.Intn(g.NumNodes()))
	}
	if posSum >= negSum {
		t.Errorf("co-occurring pairs not closer: pos %v vs neg %v", posSum, negSum)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
