package mrg

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
)

// EncoderMode selects the representation-learning variant.
type EncoderMode int

const (
	// HetGNN is the full Het-Graph Encoder with per-relation weights
	// (the paper's model).
	HetGNN EncoderMode = iota
	// HomoGNN collapses all relations into one adjacency with a single
	// propagation weight per layer (ablation LHMM-H).
	HomoGNN
	// MLPOnly skips message passing: embeddings come from the lookup
	// table followed by an MLP layer (ablation LHMM-E).
	MLPOnly
)

// String returns the mode name.
func (m EncoderMode) String() string {
	switch m {
	case HomoGNN:
		return "homo-gnn"
	case MLPOnly:
		return "mlp-only"
	default:
		return "het-gnn"
	}
}

// Encoder is the Het-Graph Encoder (§IV-B): q rounds of relation-wise
// message passing,
//
//	z_i^rel    = mean_{j∈N_i^rel} W_rel h_j        (Eq. 4)
//	h_i^{l+1}  = σ(Σ_rel W_agg z_i^rel + W_0 h_i)  (Eq. 5)
//
// over the multi-relational graph, producing synergistic embeddings for
// towers and road segments in a shared d-dimensional space.
type Encoder struct {
	Mode   EncoderMode
	Dim    int
	Rounds int

	Init *nn.Param // |V|×d initial embedding table (W_init of §IV-B)

	// Per round: relation weights (HetGNN), or a single weight
	// (HomoGNN), plus the self weight W_0 and aggregation weight W_agg.
	WCO, WSQ, WTP []*nn.Param
	WHomo         []*nn.Param
	W0            []*nn.Param
	WAgg          []*nn.Param

	// MLPOnly head.
	MLP *nn.MLP

	// Cached merged adjacency for HomoGNN.
	merged, mergedT *nn.Sparse
}

// NewEncoder builds an encoder for the given graph. dim is the
// embedding size (the paper uses 128), rounds the number of message
// passing iterations q (the paper uses 2).
func NewEncoder(g *Graph, mode EncoderMode, dim, rounds int, rng *rand.Rand) (*Encoder, error) {
	if dim <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("mrg: dim and rounds must be positive")
	}
	e := &Encoder{
		Mode:   mode,
		Dim:    dim,
		Rounds: rounds,
		Init:   nn.NewParam("enc.init", g.NumNodes(), dim, rng),
	}
	switch mode {
	case MLPOnly:
		e.MLP = nn.NewMLP("enc.mlp", []int{dim, dim, dim}, nn.ActReLU, rng)
	case HomoGNN:
		var err error
		e.merged, e.mergedT, err = g.Merged()
		if err != nil {
			return nil, err
		}
		for l := 0; l < rounds; l++ {
			e.WHomo = append(e.WHomo, nn.NewParam(fmt.Sprintf("enc.%d.Whomo", l), dim, dim, rng))
			e.W0 = append(e.W0, nn.NewParam(fmt.Sprintf("enc.%d.W0", l), dim, dim, rng))
			e.WAgg = append(e.WAgg, nn.NewParam(fmt.Sprintf("enc.%d.Wagg", l), dim, dim, rng))
		}
	default:
		for l := 0; l < rounds; l++ {
			e.WCO = append(e.WCO, nn.NewParam(fmt.Sprintf("enc.%d.Wco", l), dim, dim, rng))
			e.WSQ = append(e.WSQ, nn.NewParam(fmt.Sprintf("enc.%d.Wsq", l), dim, dim, rng))
			e.WTP = append(e.WTP, nn.NewParam(fmt.Sprintf("enc.%d.Wtp", l), dim, dim, rng))
			e.W0 = append(e.W0, nn.NewParam(fmt.Sprintf("enc.%d.W0", l), dim, dim, rng))
			e.WAgg = append(e.WAgg, nn.NewParam(fmt.Sprintf("enc.%d.Wagg", l), dim, dim, rng))
		}
	}
	return e, nil
}

// Forward computes the |V|×d node embedding matrix on the tape.
func (e *Encoder) Forward(tp *nn.Tape, g *Graph) *nn.T {
	h := tp.Var(e.Init)
	switch e.Mode {
	case MLPOnly:
		return e.MLP.Forward(tp, h)
	case HomoGNN:
		for l := 0; l < e.Rounds; l++ {
			msg := tp.SpMM(e.merged, e.mergedT, tp.MatMul(h, tp.Var(e.WHomo[l])))
			agg := tp.MatMul(msg, tp.Var(e.WAgg[l]))
			self := tp.MatMul(h, tp.Var(e.W0[l]))
			h = tp.ReLU(tp.Add(agg, self))
		}
		return h
	default:
		for l := 0; l < e.Rounds; l++ {
			zCO := tp.SpMM(g.CO, g.COt, tp.MatMul(h, tp.Var(e.WCO[l])))
			zSQ := tp.SpMM(g.SQ, g.SQt, tp.MatMul(h, tp.Var(e.WSQ[l])))
			zTP := tp.SpMM(g.TP, g.TPt, tp.MatMul(h, tp.Var(e.WTP[l])))
			sum := tp.Add(tp.Add(zCO, zSQ), zTP)
			agg := tp.MatMul(sum, tp.Var(e.WAgg[l]))
			self := tp.MatMul(h, tp.Var(e.W0[l]))
			h = tp.ReLU(tp.Add(agg, self))
		}
		return h
	}
}

// Params returns all trainable parameters of the encoder.
func (e *Encoder) Params() []*nn.Param {
	ps := []*nn.Param{e.Init}
	for l := 0; l < len(e.W0); l++ {
		ps = append(ps, e.W0[l], e.WAgg[l])
	}
	for l := 0; l < len(e.WCO); l++ {
		ps = append(ps, e.WCO[l], e.WSQ[l], e.WTP[l])
	}
	for l := 0; l < len(e.WHomo); l++ {
		ps = append(ps, e.WHomo[l])
	}
	if e.MLP != nil {
		ps = append(ps, e.MLP.Params()...)
	}
	return ps
}
