// Package cellular models the cellular positioning substrate: cell
// towers, a density-graded placement model, and a serving-tower
// simulator that reproduces the 0.1–3 km positioning error the paper
// reports for cellular trajectories (§I, §III-B).
//
// The placement model stands in for the proprietary operator
// infrastructure in the paper's Hangzhou/Xiamen datasets: tower density
// is highest near the city center and decays outward, so positioning
// error grows with distance from the center — exactly the gradient the
// paper's Fig. 7(a) sweeps.
package cellular

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/spatial"
)

// TowerID identifies a cell tower.
type TowerID int

// Tower is a cell tower with a fixed position (Definition 1).
type Tower struct {
	ID TowerID
	P  geo.Point
}

// Net is an immutable set of towers with a spatial index. Safe for
// concurrent use once built.
type Net struct {
	towers []Tower
	index  *spatial.Grid
}

// NewNet builds a tower network from positions. It returns an error if
// no towers are given.
func NewNet(positions []geo.Point) (*Net, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("cellular: no towers")
	}
	bounds := geo.Rect{Min: positions[0], Max: positions[0]}
	for _, p := range positions[1:] {
		bounds = bounds.Extend(p)
	}
	cell := math.Max(100, math.Max(bounds.Width(), bounds.Height())/128)
	n := &Net{
		towers: make([]Tower, len(positions)),
		index:  spatial.NewGrid(bounds, cell),
	}
	for i, p := range positions {
		n.towers[i] = Tower{ID: TowerID(i), P: p}
		n.index.Insert(spatial.PointItem{P: p})
	}
	return n, nil
}

// NumTowers returns the number of towers.
func (n *Net) NumTowers() int { return len(n.towers) }

// Tower returns the tower with the given id. It panics on a bad id.
func (n *Net) Tower(id TowerID) Tower { return n.towers[id] }

// Nearest returns the ids of the k towers nearest to p, ascending by
// distance.
func (n *Net) Nearest(p geo.Point, k int) []TowerID {
	ids := n.index.Nearest(p, k)
	out := make([]TowerID, len(ids))
	for i, id := range ids {
		out[i] = TowerID(id)
	}
	return out
}

// Within returns the ids of all towers within radius meters of p.
func (n *Net) Within(p geo.Point, radius float64) []TowerID {
	ids := n.index.Within(p, radius)
	out := make([]TowerID, len(ids))
	for i, id := range ids {
		out[i] = TowerID(id)
	}
	return out
}

// PlacementConfig controls synthetic tower placement.
type PlacementConfig struct {
	Bounds      geo.Rect  // area to cover
	Center      geo.Point // city center (densest towers)
	Count       int       // number of towers
	CoreRadius  float64   // radius of the dense urban core, meters
	FalloffRate float64   // how quickly density decays outside the core; 1.0 is typical
	Jitter      float64   // positional noise applied to the underlying lattice, meters
}

// Place generates tower positions whose density decays with distance
// from the center: a candidate at distance r from the center is kept
// with probability exp(-FalloffRate * max(0, r-CoreRadius)/CoreRadius).
// Placement is deterministic given rng.
func Place(cfg PlacementConfig, rng *rand.Rand) []geo.Point {
	if cfg.Count <= 0 {
		return nil
	}
	core := cfg.CoreRadius
	if core <= 0 {
		core = math.Max(cfg.Bounds.Width(), cfg.Bounds.Height()) / 4
	}
	rate := cfg.FalloffRate
	if rate <= 0 {
		rate = 1
	}
	pts := make([]geo.Point, 0, cfg.Count)
	// Rejection-sample; bail out after a generous number of attempts so
	// a pathological config cannot loop forever.
	maxAttempts := cfg.Count * 1000
	for attempts := 0; len(pts) < cfg.Count && attempts < maxAttempts; attempts++ {
		p := geo.Pt(
			cfg.Bounds.Min.X+rng.Float64()*cfg.Bounds.Width(),
			cfg.Bounds.Min.Y+rng.Float64()*cfg.Bounds.Height(),
		)
		r := p.Dist(cfg.Center)
		keep := math.Exp(-rate * math.Max(0, r-core) / core)
		if rng.Float64() < keep {
			if cfg.Jitter > 0 {
				p = p.Add(geo.Pt(rng.NormFloat64()*cfg.Jitter, rng.NormFloat64()*cfg.Jitter))
			}
			pts = append(pts, p)
		}
	}
	return pts
}

// ServingModel decides which tower serves a phone at a given true
// position. It reproduces cellular positioning error: the phone does
// not always connect to the nearest tower because of shadow fading,
// load balancing, and antenna patterns. The serving tower is sampled
// from a softmax over the negated distances of the CandidateK nearest
// towers, each perturbed by log-normal shadow fading.
type ServingModel struct {
	// CandidateK is how many nearby towers compete to serve. Default 6.
	CandidateK int
	// DistScale is the softmax temperature in meters: larger values
	// make farther towers more competitive (more positioning error).
	// Default 400.
	DistScale float64
	// ShadowSigma is the standard deviation of the shadow-fading noise
	// added to each tower's effective distance, expressed as a fraction
	// of the distance. Default 0.3.
	ShadowSigma float64
	// StickyProb is the probability of staying on the previous tower
	// when it is still among the candidates (handover hysteresis).
	// Default 0.45.
	StickyProb float64
	// OutlierProb is the probability of an extreme handover: the phone
	// connects to a uniformly random tower within OutlierRadius,
	// producing the 1–3 km positioning errors the paper attributes to
	// noisy points (§IV-E, Observation 1). Default 0.02.
	OutlierProb float64
	// OutlierRadius bounds how far an outlier handover can reach, in
	// meters. Default 2500 (the paper's error ceiling).
	OutlierRadius float64
}

// DefaultServingModel returns the model used by the synthetic dataset
// presets; its parameters were tuned so the resulting positioning-error
// distribution matches the paper's 0.1–3 km range with the Table I
// medians, including the occasional extreme outlier that creates
// unqualified candidate sets.
func DefaultServingModel() ServingModel {
	return ServingModel{
		CandidateK: 6, DistScale: 400, ShadowSigma: 0.3, StickyProb: 0.45,
		OutlierProb: 0.02, OutlierRadius: 2000,
	}
}

// Serve picks the serving tower for a phone at the true position p.
// prev is the previously serving tower or -1. Sampling is deterministic
// given rng.
func (m ServingModel) Serve(rng *rand.Rand, net *Net, p geo.Point, prev TowerID) TowerID {
	k := m.CandidateK
	if k <= 0 {
		k = 6
	}
	scale := m.DistScale
	if scale <= 0 {
		scale = 400
	}
	sigma := m.ShadowSigma
	if sigma < 0 {
		sigma = 0.3
	}
	cands := net.Nearest(p, k)
	if len(cands) == 0 {
		return -1
	}
	// Extreme handover: a uniformly random tower within OutlierRadius
	// (signal reflection, load shedding). Checked before hysteresis so
	// outliers survive even on a sticky connection.
	if m.OutlierProb > 0 && rng.Float64() < m.OutlierProb {
		radius := m.OutlierRadius
		if radius <= 0 {
			radius = 2500
		}
		far := net.Within(p, radius)
		if len(far) > 0 {
			return far[rng.Intn(len(far))]
		}
	}
	// Handover hysteresis: stay on the previous tower if it is still
	// competitive.
	if prev >= 0 && rng.Float64() < m.StickyProb {
		for _, id := range cands {
			if id == prev {
				return prev
			}
		}
	}
	// Softmax over effective (shadow-faded) distances.
	weights := make([]float64, len(cands))
	var sum float64
	for i, id := range cands {
		d := net.Tower(id).P.Dist(p)
		eff := d * (1 + rng.NormFloat64()*sigma)
		w := math.Exp(-eff / scale)
		weights[i] = w
		sum += w
	}
	if sum == 0 {
		return cands[0]
	}
	r := rng.Float64() * sum
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return cands[i]
		}
	}
	return cands[len(cands)-1]
}
