package cellular

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestNewNetValidation(t *testing.T) {
	if _, err := NewNet(nil); err == nil {
		t.Error("NewNet with no towers did not error")
	}
}

func TestNetQueries(t *testing.T) {
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(500, 0), geo.Pt(0, 500), geo.Pt(3000, 3000)}
	n, err := NewNet(pts)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumTowers() != 4 {
		t.Errorf("NumTowers = %d", n.NumTowers())
	}
	if tw := n.Tower(2); tw.ID != 2 || tw.P != geo.Pt(0, 500) {
		t.Errorf("Tower(2) = %+v", tw)
	}
	near := n.Nearest(geo.Pt(100, 0), 2)
	if len(near) != 2 || near[0] != 0 || near[1] != 1 {
		t.Errorf("Nearest = %v, want [0 1]", near)
	}
	within := n.Within(geo.Pt(0, 0), 600)
	if len(within) != 3 {
		t.Errorf("Within = %v, want 3 towers", within)
	}
}

func TestPlaceDensityGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := PlacementConfig{
		Bounds:     geo.RectAround(geo.Pt(0, 0), 10000),
		Center:     geo.Pt(0, 0),
		Count:      2000,
		CoreRadius: 2000,
	}
	pts := Place(cfg, rng)
	if len(pts) != 2000 {
		t.Fatalf("Place returned %d towers, want 2000", len(pts))
	}
	// Density per unit area must fall with radius: compare the core
	// annulus with a far annulus of equal area.
	countIn := func(r0, r1 float64) int {
		var c int
		for _, p := range pts {
			r := p.Dist(cfg.Center)
			if r >= r0 && r < r1 {
				c++
			}
		}
		return c
	}
	inner := countIn(0, 2000)
	// Outer annulus from 6000 to sqrt(6000^2+2000^2*...)... use area-equal:
	// area of r<2000 is pi*4e6; annulus [6000, r1] equal area: r1 = sqrt(6000^2+2000^2).
	outerR1 := math.Sqrt(6000*6000 + 2000*2000)
	outer := countIn(6000, outerR1)
	if inner <= outer*2 {
		t.Errorf("density gradient too weak: inner %d vs outer %d", inner, outer)
	}
}

func TestPlaceEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if pts := Place(PlacementConfig{Count: 0}, rng); pts != nil {
		t.Errorf("Count=0 returned %v", pts)
	}
	// Defaults fill in for zero CoreRadius/FalloffRate.
	pts := Place(PlacementConfig{
		Bounds: geo.RectAround(geo.Pt(0, 0), 1000),
		Center: geo.Pt(0, 0),
		Count:  10,
	}, rng)
	if len(pts) != 10 {
		t.Errorf("default config placed %d towers", len(pts))
	}
}

func TestPlaceDeterministic(t *testing.T) {
	cfg := PlacementConfig{
		Bounds:     geo.RectAround(geo.Pt(0, 0), 5000),
		Center:     geo.Pt(0, 0),
		Count:      100,
		CoreRadius: 1000,
		Jitter:     20,
	}
	a := Place(cfg, rand.New(rand.NewSource(7)))
	b := Place(cfg, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Place not deterministic for equal seeds")
		}
	}
}

func TestServeErrorDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Urban-ish tower grid: spacing 500 m.
	var pts []geo.Point
	for x := -5000.0; x <= 5000; x += 500 {
		for y := -5000.0; y <= 5000; y += 500 {
			pts = append(pts, geo.Pt(x+rng.NormFloat64()*50, y+rng.NormFloat64()*50))
		}
	}
	net, err := NewNet(pts)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultServingModel()
	var errs []float64
	prev := TowerID(-1)
	for i := 0; i < 2000; i++ {
		p := geo.Pt(rng.Float64()*8000-4000, rng.Float64()*8000-4000)
		id := m.Serve(rng, net, p, prev)
		if id < 0 {
			t.Fatal("Serve returned no tower")
		}
		errs = append(errs, net.Tower(id).P.Dist(p))
		prev = id
	}
	var sum float64
	var over3km int
	for _, e := range errs {
		sum += e
		if e > 3000 {
			over3km++
		}
	}
	mean := sum / float64(len(errs))
	// The paper says cellular errors are 0.1–3 km; on a 500 m grid the
	// serving error should average a few hundred meters.
	if mean < 100 || mean > 1500 {
		t.Errorf("mean positioning error %v m outside plausible range", mean)
	}
	if float64(over3km)/float64(len(errs)) > 0.05 {
		t.Errorf("too many >3 km errors: %d/%d", over3km, len(errs))
	}
}

func TestServeSticky(t *testing.T) {
	// With StickyProb 1 and the previous tower among candidates, Serve
	// must return it.
	pts := []geo.Point{geo.Pt(0, 0), geo.Pt(400, 0), geo.Pt(800, 0)}
	net, err := NewNet(pts)
	if err != nil {
		t.Fatal(err)
	}
	m := ServingModel{CandidateK: 3, DistScale: 400, StickyProb: 1}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		if got := m.Serve(rng, net, geo.Pt(100, 0), 1); got != 1 {
			t.Fatalf("sticky Serve = %d, want 1", got)
		}
	}
}

func TestServeDeterministic(t *testing.T) {
	pts := Place(PlacementConfig{
		Bounds:     geo.RectAround(geo.Pt(0, 0), 3000),
		Center:     geo.Pt(0, 0),
		Count:      50,
		CoreRadius: 1500,
	}, rand.New(rand.NewSource(2)))
	net, err := NewNet(pts)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultServingModel()
	run := func(seed int64) []TowerID {
		rng := rand.New(rand.NewSource(seed))
		var ids []TowerID
		prev := TowerID(-1)
		for i := 0; i < 50; i++ {
			p := geo.Pt(float64(i)*50-1250, 0)
			prev = m.Serve(rng, net, p, prev)
			ids = append(ids, prev)
		}
		return ids
	}
	a, b := run(4), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Serve not deterministic for equal seeds")
		}
	}
}
