// Package metrics implements the paper's evaluation criteria (§V-A3):
// precision, recall, Route Mismatch Fraction (RMF, Eq. 22), Corridor
// Mismatch Fraction (CMF, Eq. 23), and the Hitting Ratio for candidate
// preparation quality.
package metrics

import (
	"math"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// PathMetrics aggregates the segment- and corridor-level accuracy of a
// matched path against the ground truth.
type PathMetrics struct {
	Precision float64 // correct length / matched length
	Recall    float64 // correct length / truth length
	RMF       float64 // (missing + redundant length) / truth length
	CMF       float64 // corridor-uncovered truth length / truth length
}

// PathGeometry concatenates the segment shapes of a path.
func PathGeometry(net *roadnet.Network, path []roadnet.SegmentID) geo.Polyline {
	var pl geo.Polyline
	for i, sid := range path {
		shape := net.Segment(sid).Shape
		if i == 0 {
			pl = append(pl, shape...)
		} else {
			pl = append(pl, shape[1:]...)
		}
	}
	return pl
}

// EvalPath compares a matched path with the ground-truth path.
// corridor is the CMF corridor radius in meters (the paper reports
// CMF50). Duplicate segments in either path are counted once.
func EvalPath(net *roadnet.Network, matched, truth []roadnet.SegmentID, corridor float64) PathMetrics {
	truthSet := make(map[roadnet.SegmentID]bool, len(truth))
	var truthLen float64
	for _, s := range truth {
		if !truthSet[s] {
			truthSet[s] = true
			truthLen += net.Segment(s).Length
		}
	}
	matchedSet := make(map[roadnet.SegmentID]bool, len(matched))
	var matchedLen, correctLen float64
	for _, s := range matched {
		if !matchedSet[s] {
			matchedSet[s] = true
			matchedLen += net.Segment(s).Length
			if truthSet[s] {
				correctLen += net.Segment(s).Length
			}
		}
	}
	var missingLen float64
	for s := range truthSet {
		if !matchedSet[s] {
			missingLen += net.Segment(s).Length
		}
	}
	redundantLen := matchedLen - correctLen

	m := PathMetrics{}
	if matchedLen > 0 {
		m.Precision = correctLen / matchedLen
	}
	if truthLen > 0 {
		m.Recall = correctLen / truthLen
		m.RMF = (missingLen + redundantLen) / truthLen
		m.CMF = cmf(net, matched, truth, truthLen, corridor)
	}
	return m
}

// cmf samples the ground-truth geometry and measures the fraction of
// its length farther than the corridor radius from the matched path.
func cmf(net *roadnet.Network, matched, truth []roadnet.SegmentID, truthLen, corridor float64) float64 {
	if len(matched) == 0 {
		return 1
	}
	matchedGeom := PathGeometry(net, matched)
	truthGeom := PathGeometry(net, truth)
	const step = 10.0 // meters between samples
	n := int(truthLen/step) + 2
	var uncovered int
	for i := 0; i < n; i++ {
		p := truthGeom.At(truthLen * float64(i) / float64(n-1))
		if matchedGeom.Dist(p) > corridor {
			uncovered++
		}
	}
	return float64(uncovered) / float64(n)
}

// HittingRatio is the fraction of trajectory points whose candidate
// road set intersects the ground-truth path (§V-A3). cands holds the
// candidate segment ids per point.
func HittingRatio(cands [][]roadnet.SegmentID, truth []roadnet.SegmentID) float64 {
	if len(cands) == 0 {
		return 0
	}
	truthSet := make(map[roadnet.SegmentID]bool, len(truth))
	for _, s := range truth {
		truthSet[s] = true
	}
	hits := 0
	for _, layer := range cands {
		for _, s := range layer {
			if truthSet[s] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(cands))
}

// Accum accumulates per-trip metrics into means.
type Accum struct {
	n         int
	precision float64
	recall    float64
	rmf       float64
	cmf       float64
	hr        float64
	hrN       int
	seconds   float64
}

// Add folds one trip's metrics into the accumulator.
func (a *Accum) Add(m PathMetrics) {
	a.n++
	a.precision += m.Precision
	a.recall += m.Recall
	a.rmf += m.RMF
	a.cmf += m.CMF
}

// AddHR folds one trip's hitting ratio (HMM-family methods only).
func (a *Accum) AddHR(hr float64) {
	a.hrN++
	a.hr += hr
}

// AddTime folds one trip's matching wall time in seconds.
func (a *Accum) AddTime(sec float64) { a.seconds += sec }

// Summary is the averaged result of an evaluation run — one row of the
// paper's Table II.
type Summary struct {
	Trips     int
	Precision float64
	Recall    float64
	RMF       float64
	CMF       float64
	HR        float64 // NaN when not applicable
	AvgTimeS  float64
}

// Summary returns the means accumulated so far.
func (a *Accum) Summary() Summary {
	s := Summary{Trips: a.n, HR: math.NaN()}
	if a.n == 0 {
		return s
	}
	fn := float64(a.n)
	s.Precision = a.precision / fn
	s.Recall = a.recall / fn
	s.RMF = a.rmf / fn
	s.CMF = a.cmf / fn
	s.AvgTimeS = a.seconds / fn
	if a.hrN > 0 {
		s.HR = a.hr / float64(a.hrN)
	}
	return s
}
