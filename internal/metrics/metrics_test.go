package metrics

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

// lineWorld builds a single east-west street of n 100 m segments
// (one-way, left to right), returning the network and segment ids.
func lineWorld(t testing.TB, n int) (*roadnet.Network, []roadnet.SegmentID) {
	t.Helper()
	var b roadnet.Builder
	nodes := make([]roadnet.NodeID, n+1)
	for i := range nodes {
		nodes[i] = b.AddNode(geo.Pt(float64(i)*100, 0))
	}
	ids := make([]roadnet.SegmentID, n)
	for i := 0; i < n; i++ {
		sid, err := b.AddSegment(nodes[i], nodes[i+1], roadnet.Local)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = sid
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, ids
}

func TestEvalPathPerfectMatch(t *testing.T) {
	net, ids := lineWorld(t, 5)
	m := EvalPath(net, ids, ids, 50)
	if m.Precision != 1 || m.Recall != 1 || m.RMF != 0 || m.CMF != 0 {
		t.Errorf("perfect match metrics = %+v", m)
	}
}

func TestEvalPathPartial(t *testing.T) {
	net, ids := lineWorld(t, 4)
	// Match covers the first half only.
	m := EvalPath(net, ids[:2], ids, 50)
	if m.Precision != 1 {
		t.Errorf("Precision = %v, want 1 (no redundant)", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Errorf("Recall = %v, want 0.5", m.Recall)
	}
	if m.RMF != 0.5 { // 200 m missing / 400 m truth
		t.Errorf("RMF = %v, want 0.5", m.RMF)
	}
	// Half the truth corridor uncovered (uncovered fraction ≈ 0.5 less
	// the 50 m corridor spillover at the boundary).
	if m.CMF < 0.3 || m.CMF > 0.5 {
		t.Errorf("CMF = %v, want ≈0.4", m.CMF)
	}
}

func TestEvalPathRedundant(t *testing.T) {
	net, ids := lineWorld(t, 6)
	// Truth is the middle two segments; match covers all six.
	truth := ids[2:4]
	m := EvalPath(net, ids, truth, 50)
	if math.Abs(m.Precision-2.0/6.0) > 1e-12 {
		t.Errorf("Precision = %v, want 1/3", m.Precision)
	}
	if m.Recall != 1 {
		t.Errorf("Recall = %v, want 1", m.Recall)
	}
	// Redundant 400 m / truth 200 m.
	if math.Abs(m.RMF-2) > 1e-12 {
		t.Errorf("RMF = %v, want 2", m.RMF)
	}
	if m.CMF != 0 {
		t.Errorf("CMF = %v, want 0 (truth fully covered)", m.CMF)
	}
}

func TestEvalPathDuplicatesCountedOnce(t *testing.T) {
	net, ids := lineWorld(t, 3)
	dup := []roadnet.SegmentID{ids[0], ids[0], ids[1], ids[1]}
	m := EvalPath(net, dup, ids, 50)
	want := EvalPath(net, ids[:2], ids, 50)
	if m != want {
		t.Errorf("duplicate handling: %+v vs %+v", m, want)
	}
}

func TestEvalPathEmptyMatch(t *testing.T) {
	net, ids := lineWorld(t, 3)
	m := EvalPath(net, nil, ids, 50)
	if m.Precision != 0 || m.Recall != 0 || m.CMF != 1 || m.RMF != 1 {
		t.Errorf("empty match metrics = %+v", m)
	}
}

func TestCMFParallelRoad(t *testing.T) {
	// A matched path on a parallel street 30 m away: segment-level
	// metrics fail it, corridor-level (CMF50) passes it — the paper's
	// motivation for CMF.
	var b roadnet.Builder
	a0 := b.AddNode(geo.Pt(0, 0))
	a1 := b.AddNode(geo.Pt(400, 0))
	c0 := b.AddNode(geo.Pt(0, 30))
	c1 := b.AddNode(geo.Pt(400, 30))
	truthSeg, err := b.AddSegment(a0, a1, roadnet.Local)
	if err != nil {
		t.Fatal(err)
	}
	parallelSeg, err := b.AddSegment(c0, c1, roadnet.Local)
	if err != nil {
		t.Fatal(err)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := EvalPath(net, []roadnet.SegmentID{parallelSeg}, []roadnet.SegmentID{truthSeg}, 50)
	if m.Precision != 0 || m.Recall != 0 {
		t.Errorf("segment metrics should fail: %+v", m)
	}
	if m.CMF != 0 {
		t.Errorf("CMF50 = %v, want 0 for a 30 m parallel road", m.CMF)
	}
	// With a 20 m corridor it fails again.
	m20 := EvalPath(net, []roadnet.SegmentID{parallelSeg}, []roadnet.SegmentID{truthSeg}, 20)
	if m20.CMF < 0.9 {
		t.Errorf("CMF20 = %v, want ≈1", m20.CMF)
	}
}

func TestHittingRatio(t *testing.T) {
	_, ids := lineWorld(t, 4)
	truth := ids
	cands := [][]roadnet.SegmentID{
		{ids[0], ids[1]}, // hit
		{ids[3]},         // hit
		{999, 1000},      // miss (bogus ids not in truth)
		{ids[2], 999},    // hit
	}
	if hr := HittingRatio(cands, truth); hr != 0.75 {
		t.Errorf("HittingRatio = %v, want 0.75", hr)
	}
	if hr := HittingRatio(nil, truth); hr != 0 {
		t.Errorf("empty HittingRatio = %v", hr)
	}
}

func TestAccum(t *testing.T) {
	var a Accum
	a.Add(PathMetrics{Precision: 0.4, Recall: 0.6, RMF: 1.0, CMF: 0.2})
	a.Add(PathMetrics{Precision: 0.6, Recall: 0.8, RMF: 0.5, CMF: 0.1})
	a.AddHR(0.9)
	a.AddTime(0.02)
	a.AddTime(0.04)
	s := a.Summary()
	if s.Trips != 2 {
		t.Errorf("Trips = %d", s.Trips)
	}
	if math.Abs(s.Precision-0.5) > 1e-12 || math.Abs(s.Recall-0.7) > 1e-12 {
		t.Errorf("means wrong: %+v", s)
	}
	if math.Abs(s.RMF-0.75) > 1e-12 || math.Abs(s.CMF-0.15) > 1e-9 {
		t.Errorf("means wrong: %+v", s)
	}
	if s.HR != 0.9 {
		t.Errorf("HR = %v", s.HR)
	}
	if math.Abs(s.AvgTimeS-0.03) > 1e-12 {
		t.Errorf("AvgTimeS = %v", s.AvgTimeS)
	}
	var empty Accum
	es := empty.Summary()
	if es.Trips != 0 || !math.IsNaN(es.HR) {
		t.Errorf("empty summary = %+v", es)
	}
}

func TestPathGeometry(t *testing.T) {
	net, ids := lineWorld(t, 3)
	pl := PathGeometry(net, ids)
	if math.Abs(pl.Length()-300) > 1e-9 {
		t.Errorf("geometry length = %v", pl.Length())
	}
	if len(PathGeometry(net, nil)) != 0 {
		t.Error("empty path produced geometry")
	}
}
