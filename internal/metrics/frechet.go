package metrics

import (
	"math"

	"repro/internal/geo"
)

// DiscreteFrechet computes the discrete Fréchet distance between two
// polylines — the classical curve-similarity measure of the
// map-matching literature (the paper's related work cites
// Fréchet-based matching [24]). It is the minimum, over all monotone
// couplings of the two vertex sequences, of the maximum pairwise
// distance. Runs in O(|a|·|b|) time and O(|b|) space.
//
// Empty inputs return +Inf (no coupling exists).
func DiscreteFrechet(a, b geo.Polyline) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, len(b))
	cur := make([]float64, len(b))
	prev[0] = a[0].Dist(b[0])
	for j := 1; j < len(b); j++ {
		prev[j] = math.Max(prev[j-1], a[0].Dist(b[j]))
	}
	for i := 1; i < len(a); i++ {
		cur[0] = math.Max(prev[0], a[i].Dist(b[0]))
		for j := 1; j < len(b); j++ {
			best := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
			cur[j] = math.Max(best, a[i].Dist(b[j]))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)-1]
}

// FrechetSimilarity resamples both polylines to a common vertex count
// and returns their discrete Fréchet distance — a resolution-stable
// variant for comparing matched paths with ground truth geometry.
func FrechetSimilarity(a, b geo.Polyline, samples int) float64 {
	if samples < 2 {
		samples = 64
	}
	ra, rb := a.Resample(samples), b.Resample(samples)
	return DiscreteFrechet(ra, rb)
}
