package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

func TestDiscreteFrechetBasics(t *testing.T) {
	a := geo.Polyline{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(200, 0)}
	// Identical curves: distance 0.
	if d := DiscreteFrechet(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Parallel offset by 30: distance 30.
	b := geo.Polyline{geo.Pt(0, 30), geo.Pt(100, 30), geo.Pt(200, 30)}
	if d := DiscreteFrechet(a, b); math.Abs(d-30) > 1e-12 {
		t.Errorf("parallel distance = %v, want 30", d)
	}
	// Empty inputs: +Inf.
	if d := DiscreteFrechet(nil, a); !math.IsInf(d, 1) {
		t.Errorf("empty input = %v", d)
	}
}

func TestDiscreteFrechetLeash(t *testing.T) {
	// The classic example where Hausdorff would be small but Fréchet
	// large: curves traversed in opposite directions.
	a := geo.Polyline{geo.Pt(0, 0), geo.Pt(100, 0)}
	rev := geo.Polyline{geo.Pt(100, 0), geo.Pt(0, 0)}
	d := DiscreteFrechet(a, rev)
	if d < 100-1e-9 {
		t.Errorf("reversed-curve distance = %v, want >= 100", d)
	}
}

// Properties: symmetry, triangle-like lower bound by endpoint
// distances, and monotone growth under uniform offsets.
func TestDiscreteFrechetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randPl := func(n int) geo.Polyline {
		pl := make(geo.Polyline, n)
		x, y := 0.0, 0.0
		for i := range pl {
			x += rng.Float64() * 100
			y += rng.Float64()*60 - 30
			pl[i] = geo.Pt(x, y)
		}
		return pl
	}
	for trial := 0; trial < 50; trial++ {
		a := randPl(2 + rng.Intn(8))
		b := randPl(2 + rng.Intn(8))
		dab := DiscreteFrechet(a, b)
		dba := DiscreteFrechet(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("not symmetric: %v vs %v", dab, dba)
		}
		// The leash is at least the first-vertex and last-vertex gaps.
		lo := math.Max(a[0].Dist(b[0]), a[len(a)-1].Dist(b[len(b)-1]))
		if dab < lo-1e-9 {
			t.Fatalf("distance %v below endpoint bound %v", dab, lo)
		}
		// Offsetting b uniformly by v grows the distance by at most |v|.
		off := geo.Pt(50, -20)
		shifted := make(geo.Polyline, len(b))
		for i, p := range b {
			shifted[i] = p.Add(off)
		}
		ds := DiscreteFrechet(a, shifted)
		if ds > dab+off.Norm()+1e-9 {
			t.Fatalf("offset grew distance too much: %v > %v + %v", ds, dab, off.Norm())
		}
	}
}

func TestFrechetSimilarity(t *testing.T) {
	a := geo.Polyline{geo.Pt(0, 0), geo.Pt(1000, 0)}
	b := geo.Polyline{geo.Pt(0, 40), geo.Pt(250, 40), geo.Pt(500, 40), geo.Pt(1000, 40)}
	// Same shape at different vertex densities: resampling makes the
	// comparison resolution-stable.
	if d := FrechetSimilarity(a, b, 32); math.Abs(d-40) > 1 {
		t.Errorf("FrechetSimilarity = %v, want ≈40", d)
	}
	// Default sample count kicks in for bad input.
	if d := FrechetSimilarity(a, b, 0); math.Abs(d-40) > 1 {
		t.Errorf("default samples = %v", d)
	}
}
