// Package sched is the cross-request micro-batching inference
// scheduler: it sits between the serving layer and the model's learned
// scoring paths and coalesces MLP forward passes submitted by many
// concurrent requests into shared matrix products.
//
// The learned scoring of LHMM is embarrassingly batchable — every MLP
// head (Eq. 7/8/10/12) is applied row-independently, so the rows of
// any number of requests can be concatenated into one product and the
// per-request output rows sliced back out with bit-identical float64
// values (each output row accumulates in the same inner-loop order
// whether it is scored alone or inside a larger batch; see
// nn.MatMulInto). Batching within one trajectory already happens in
// core; this package adds the continuous-batching dimension across
// requests, the same insight GPU-serving stacks use for transformer
// matchers.
//
// Protocol: a request calls Submit with its feature matrix and a
// preallocated destination. Items are grouped by the *nn.MLP they
// target and flushed as one batch when either the coalescing window
// expires or the group reaches MaxRows. A fixed worker pool executes
// batches; Submit blocks until the caller's rows are written.
//
// Two row-level optimizations ride on row-independence, both invisible
// to byte parity: duplicate rows inside a coalesced batch are computed
// once (dedup), and — with Config.MemoBytes — rows identical to ones
// already scored against the same snapshot are served from a bounded
// cross-batch memo without touching the MLP at all. Correlated serving
// traffic (many clients over the same or overlapping trajectories) is
// exactly the workload where the memo turns coalescing into a real
// aggregate-throughput win; see BENCH_pr9.json.
//
// Model-snapshot pinning: the grouping key is the MLP pointer itself.
// Every model snapshot published by the serving registry owns distinct
// MLP instances, so a micro-batch can only ever contain rows scored
// against one snapshot's weights — a hot reload (SIGHUP or POST
// /v1/reload) mid-batch creates new groups for new requests and can
// never mix weights inside a product.
//
// Float64 mode is byte-identical to direct scoring and is the only
// mode parity suites run. The optional float32 path (Config.F32)
// trades that equality for throughput and is documented as
// approximate.
package sched

import (
	"encoding/binary"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
)

// Scheduler telemetry. Batch size (rows per executed product) is the
// headline histogram: a healthy scheduler under load shows sizes well
// above per-request row counts.
var (
	obsItems     = obs.Default.Counter("sched.items")
	obsRows      = obs.Default.Counter("sched.rows")
	obsBatches   = obs.Default.Counter("sched.batches")
	obsDirect    = obs.Default.Counter("sched.direct")
	obsFlushWin  = obs.Default.Counter("sched.flush.window")
	obsFlushSize = obs.Default.Counter("sched.flush.size")
	obsFlushDrn  = obs.Default.Counter("sched.flush.drain")
	obsRowsDedup = obs.Default.Counter("sched.rows.deduped")
	obsMemoHits  = obs.Default.Counter("sched.memo.hits")
	obsMemoEvict = obs.Default.Counter("sched.memo.evictions")
	obsQueueRows = obs.Default.Gauge("sched.queue.depth")
	obsBatchSize = obs.Default.Histogram("sched.batch.size", BatchSizeBuckets)
	obsBatchItem = obs.Default.Histogram("sched.batch.items", BatchSizeBuckets)
	obsOccupancy = obs.Default.Histogram("sched.window.occupancy", OccupancyBuckets)
)

// BatchSizeBuckets bound the batch-size histograms (rows and items per
// executed batch).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// OccupancyBuckets bound the window-occupancy histogram: the fraction
// of the coalescing window a batch actually waited before flushing
// (size- and drain-flushed batches land below 1; window flushes at 1).
var OccupancyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1}

// Config parameterizes a Scheduler.
type Config struct {
	// Window is the coalescing window: the longest an item waits for
	// batch-mates before its group is flushed. <= 0 disables batching —
	// Submit executes immediately on the caller's goroutine, preserving
	// today's behavior exactly.
	Window time.Duration
	// MaxRows flushes a group early once its queued rows reach this
	// (default 512). Bounds both latency under load and batch memory.
	MaxRows int
	// Workers is the number of executor goroutines (default
	// GOMAXPROCS). Batches from different groups execute concurrently;
	// a single batch is one product (which may itself row-parallelize
	// inside nn.MatMulInto).
	Workers int
	// F32, when true, runs batched products through the approximate
	// float32 forward path (see nn.MLPF32). Output is NOT
	// byte-identical to float64 scoring; never enable under a parity
	// suite.
	F32 bool
	// MemoBytes, when > 0, bounds a cross-batch memo of computed output
	// rows keyed by (MLP snapshot, input-row bits): correlated traffic —
	// many concurrent requests over the same or overlapping trajectories
	// — resubmits identical feature rows long after the original batch
	// flushed, and the memo serves them without recomputing the product.
	// Rows are bit-identical either way (same row, same weights, same
	// accumulation order), so the memo is invisible to the float64
	// parity guarantee; snapshot pinning holds because the key includes
	// the MLP pointer, which every reload retires. The budget counts key
	// + value bytes and is cleared wholesale when exceeded. 0 disables.
	MemoBytes int
}

func (c Config) withDefaults() Config {
	if c.MaxRows <= 0 {
		c.MaxRows = 512
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// item is one submitted forward pass: x rows to push through the
// group's MLP, out the caller-owned destination. done is closed after
// out is fully written.
type item struct {
	x    *nn.Mat
	out  *nn.Mat
	done chan struct{}
}

// group accumulates items targeting one MLP (== one model snapshot's
// head) until flushed.
type group struct {
	mlp    *nn.MLP
	items  []*item
	rows   int
	opened time.Time
	timer  *time.Timer
}

// batch is a flushed group handed to the worker pool.
type batch struct {
	mlp    *nn.MLP
	items  []*item
	rows   int
	waited time.Duration
}

// Scheduler coalesces cross-request MLP forward passes. Create with
// New, install on served models via core's Model.Exec hook, and Close
// on shutdown (Close flushes every queued item — graceful drain never
// strands work).
type Scheduler struct {
	cfg Config

	mu     sync.Mutex
	groups map[*nn.MLP]*group
	closed bool

	batches   chan *batch
	inflight  sync.WaitGroup // queued + executing batches
	workersWG sync.WaitGroup
	quit      chan struct{}

	// f32 caches the float32 twin per MLP (built lazily on first use;
	// entries for retired model snapshots are dropped wholesale when
	// the cache grows past f32CacheMax).
	f32mu sync.Mutex
	f32   map[*nn.MLP]*nn.MLPF32

	// memo is the cross-batch output-row cache (Config.MemoBytes),
	// per-MLP so snapshot pinning is structural. memoBytes tracks the
	// approximate key+value footprint against the budget.
	memoMu    sync.Mutex
	memo      map[*nn.MLP]map[string][]float64
	memoBytes int
}

// f32CacheMax bounds the float32 twin cache; reloads retire MLP
// pointers, so the cache is cleared (and lazily rebuilt) when it
// outgrows any plausible live-snapshot count.
const f32CacheMax = 64

// New starts a scheduler with cfg.Workers executor goroutines. With
// cfg.Window <= 0 the scheduler is a pass-through: Submit executes
// synchronously and no goroutines run.
func New(cfg Config) *Scheduler {
	s := &Scheduler{
		cfg:    cfg.withDefaults(),
		groups: make(map[*nn.MLP]*group),
		quit:   make(chan struct{}),
		f32:    make(map[*nn.MLP]*nn.MLPF32),
		memo:   make(map[*nn.MLP]map[string][]float64),
	}
	if s.cfg.Window > 0 {
		s.batches = make(chan *batch, 256)
		for i := 0; i < s.cfg.Workers; i++ {
			s.workersWG.Add(1)
			go s.worker()
		}
	}
	return s
}

// Batching reports whether cross-request coalescing is active.
func (s *Scheduler) Batching() bool { return s.cfg.Window > 0 }

// ApplyMLP implements core.MLPExecutor: push x (n×in) through mlp into
// out (n×out), blocking until out is written. x and out are
// caller-owned and must stay valid until return; out never aliases
// scheduler memory afterwards.
func (s *Scheduler) ApplyMLP(mlp *nn.MLP, x, out *nn.Mat) {
	if x.R == 0 {
		return
	}
	obsItems.Inc()
	obsRows.Add(int64(x.R))
	if s.cfg.Window <= 0 {
		obsDirect.Inc()
		s.applyDirect(mlp, x, out)
		return
	}
	it := &item{x: x, out: out, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		obsDirect.Inc()
		s.applyDirect(mlp, x, out)
		return
	}
	g := s.groups[mlp]
	if g == nil {
		g = &group{mlp: mlp, opened: time.Now()}
		s.groups[mlp] = g
		g.timer = time.AfterFunc(s.cfg.Window, func() { s.flushGroup(mlp, g, flushWindow) })
	}
	g.items = append(g.items, it)
	g.rows += x.R
	full := g.rows >= s.cfg.MaxRows
	var b *batch
	if full {
		b = s.detachLocked(mlp, g, flushSize)
	}
	s.queueDepthLocked()
	s.mu.Unlock()
	if b != nil {
		s.dispatch(b)
	}
	<-it.done
}

type flushReason int

const (
	flushWindow flushReason = iota
	flushSize
	flushDrain
)

// flushGroup detaches g (if it is still the live group for mlp) and
// dispatches it. Timer-driven.
func (s *Scheduler) flushGroup(mlp *nn.MLP, g *group, why flushReason) {
	s.mu.Lock()
	if s.groups[mlp] != g {
		// Already flushed by size or drain; the timer lost the race.
		s.mu.Unlock()
		return
	}
	b := s.detachLocked(mlp, g, why)
	s.queueDepthLocked()
	s.mu.Unlock()
	if b != nil {
		s.dispatch(b)
	}
}

// detachLocked removes g from the live map and wraps it as a batch.
// Caller holds mu.
func (s *Scheduler) detachLocked(mlp *nn.MLP, g *group, why flushReason) *batch {
	delete(s.groups, mlp)
	if g.timer != nil {
		g.timer.Stop()
	}
	switch why {
	case flushWindow:
		obsFlushWin.Inc()
	case flushSize:
		obsFlushSize.Inc()
	case flushDrain:
		obsFlushDrn.Inc()
	}
	return &batch{mlp: mlp, items: g.items, rows: g.rows, waited: time.Since(g.opened)}
}

// queueDepthLocked refreshes the queued-rows gauge. Caller holds mu.
func (s *Scheduler) queueDepthLocked() {
	var rows int
	for _, g := range s.groups {
		rows += g.rows
	}
	obsQueueRows.Set(int64(rows))
}

// dispatch hands a batch to the worker pool. The inflight group is
// incremented before the send so Close can wait for every queued batch.
func (s *Scheduler) dispatch(b *batch) {
	s.inflight.Add(1)
	s.batches <- b
}

func (s *Scheduler) worker() {
	defer s.workersWG.Done()
	for {
		select {
		case b := <-s.batches:
			s.execute(b)
			s.inflight.Done()
		case <-s.quit:
			// Drain anything still queued, then exit.
			for {
				select {
				case b := <-s.batches:
					s.execute(b)
					s.inflight.Done()
				default:
					return
				}
			}
		}
	}
}

// execute runs one batch: concatenate the unique rows across every
// item, apply the MLP once, demux the output rows, release the
// waiters. Duplicate input rows — concurrent requests over correlated
// traffic resubmit equal feature rows, and every k×k fan-out repeats
// its unreachable-pair sentinel row — are forwarded once and their
// output fanned back out: row-independence makes the shared output row
// bit-identical to computing each duplicate separately, so the dedup
// is invisible to the float64 parity guarantee.
func (s *Scheduler) execute(b *batch) {
	obsBatches.Inc()
	obsBatchSize.Observe(float64(b.rows))
	obsBatchItem.Observe(float64(len(b.items)))
	if s.cfg.Window > 0 {
		occ := float64(b.waited) / float64(s.cfg.Window)
		if occ > 1 {
			occ = 1
		}
		obsOccupancy.Observe(occ)
	}
	memoOn := s.cfg.MemoBytes > 0
	if !memoOn && len(b.items) == 1 {
		// Nothing to coalesce — and without a memo nothing worth
		// dedupping: rows inside one request's product are essentially
		// always distinct (the session's own caches already collapse
		// repeats), so hashing them costs more than it saves. Skip the
		// concat copy too.
		it := b.items[0]
		s.applyDirect(b.mlp, it.x, it.out)
		close(it.done)
		return
	}
	ws := nn.GetWorkspace()
	in := b.items[0].x.C
	// Key each row by its raw float64 bits; the map lookup with
	// string(key) is allocation-free, inserts copy the key once per
	// unique miss row.
	idx := make([]int32, 0, b.rows)      // per row: unique-miss index, or -1
	var hit [][]float64                  // per row: memoized output, nil on miss
	var missKeys []string                // per unique miss: its key (for memo insert)
	seen := make(map[string]int32, b.rows)
	key := make([]byte, in*8)
	uniq, hits := 0, 0
	var mm map[string][]float64
	if memoOn {
		s.memoMu.Lock()
		if mm = s.memo[b.mlp]; mm == nil {
			mm = make(map[string][]float64)
			s.memo[b.mlp] = mm
		}
		hit = make([][]float64, 0, b.rows)
	}
	for _, it := range b.items {
		for r := 0; r < it.x.R; r++ {
			row := it.x.Row(r)
			for j, v := range row {
				binary.LittleEndian.PutUint64(key[j*8:], math.Float64bits(v))
			}
			if memoOn {
				if v, ok := mm[string(key)]; ok {
					idx = append(idx, -1)
					hit = append(hit, v)
					hits++
					continue
				}
				hit = append(hit, nil)
			}
			if u, ok := seen[string(key)]; ok {
				idx = append(idx, u)
				continue
			}
			seen[string(key)] = int32(uniq)
			if memoOn {
				missKeys = append(missKeys, string(key))
			}
			idx = append(idx, int32(uniq))
			uniq++
		}
	}
	if memoOn {
		s.memoMu.Unlock()
		obsMemoHits.Add(int64(hits))
	}
	obsRowsDedup.Add(int64(b.rows - hits - uniq))

	var res *nn.Mat
	if uniq > 0 {
		unique := ws.Take(uniq, in)
		ri := 0
		for _, it := range b.items {
			for r := 0; r < it.x.R; r++ {
				if u := idx[ri]; u >= 0 {
					copy(unique.Row(int(u)), it.x.Row(r))
				}
				ri++
			}
		}
		res = s.forward(ws, b.mlp, unique)
	}

	ri := 0
	for _, it := range b.items {
		for r := 0; r < it.x.R; r++ {
			if u := idx[ri]; u >= 0 {
				copy(it.out.Row(r), res.Row(int(u)))
			} else {
				copy(it.out.Row(r), hit[ri])
			}
			ri++
		}
		close(it.done)
	}

	if memoOn && uniq > 0 {
		outC := res.C
		s.memoMu.Lock()
		// The batch's map may have been evicted mid-flight; re-fetch so
		// inserts land in the live generation.
		if mm = s.memo[b.mlp]; mm == nil {
			mm = make(map[string][]float64)
			s.memo[b.mlp] = mm
		}
		for u, k := range missKeys {
			if _, ok := mm[k]; ok {
				continue
			}
			v := make([]float64, outC)
			copy(v, res.Row(u))
			mm[k] = v
			s.memoBytes += len(k) + 8*outC + 48
		}
		if s.memoBytes > s.cfg.MemoBytes {
			s.memo = make(map[*nn.MLP]map[string][]float64)
			s.memoBytes = 0
			obsMemoEvict.Inc()
		}
		s.memoMu.Unlock()
	}
	nn.PutWorkspace(ws)
}

// applyDirect scores one item synchronously (pass-through mode, closed
// scheduler, or a single-item batch).
func (s *Scheduler) applyDirect(mlp *nn.MLP, x, out *nn.Mat) {
	ws := nn.GetWorkspace()
	res := s.forward(ws, mlp, x)
	copy(out.W, res.W[:x.R*res.C])
	nn.PutWorkspace(ws)
}

// forward applies mlp over x in the configured precision. The result
// aliases ws.
func (s *Scheduler) forward(ws *nn.Workspace, mlp *nn.MLP, x *nn.Mat) *nn.Mat {
	if !s.cfg.F32 {
		return mlp.ApplyWS(ws, x)
	}
	out := ws.Take(x.R, mlp.OutDim())
	s.f32For(mlp).ApplyInto(out, x)
	return out
}

// f32For returns (building if needed) the float32 twin of mlp.
func (s *Scheduler) f32For(mlp *nn.MLP) *nn.MLPF32 {
	s.f32mu.Lock()
	f := s.f32[mlp]
	if f == nil {
		if len(s.f32) >= f32CacheMax {
			s.f32 = make(map[*nn.MLP]*nn.MLPF32)
		}
		f = nn.NewMLPF32(mlp)
		s.f32[mlp] = f
	}
	s.f32mu.Unlock()
	return f
}

// Close flushes every queued group, waits for all dispatched batches
// to execute, and stops the workers. Items submitted after Close fall
// back to direct execution, so no caller is ever stranded — graceful
// drain is: stop admitting requests, let in-flight matches finish
// (their submits either batch or run direct), then Close.
func (s *Scheduler) Close() {
	if s.cfg.Window <= 0 {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var flushed []*batch
	for mlp, g := range s.groups {
		flushed = append(flushed, s.detachLocked(mlp, g, flushDrain))
	}
	s.queueDepthLocked()
	s.mu.Unlock()
	for _, b := range flushed {
		s.dispatch(b)
	}
	s.inflight.Wait()
	close(s.quit)
	s.workersWG.Wait()
}
