package sched

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
)

func testMLP(t *testing.T, seed int64) *nn.MLP {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return nn.NewMLP("t", []int{6, 8, 2}, nn.ActReLU, rng)
}

func randMat(rng *rand.Rand, r, c int) *nn.Mat {
	m := nn.NewMat(r, c)
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
	}
	return m
}

// direct computes the reference output with the inline workspace path.
func direct(mlp *nn.MLP, x *nn.Mat) *nn.Mat {
	ws := nn.GetWorkspace()
	defer nn.PutWorkspace(ws)
	return mlp.ApplyWS(ws, x).Clone()
}

// TestSchedParityF64 pins the core contract: concurrent submissions
// coalesced into shared products return float64 rows bit-identical to
// direct per-request scoring.
func TestSchedParityF64(t *testing.T) {
	mlp := testMLP(t, 1)
	s := New(Config{Window: 200 * time.Microsecond, MaxRows: 64, Workers: 4})
	defer s.Close()

	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for r := 0; r < rounds; r++ {
				x := randMat(rng, 1+rng.Intn(9), 6)
				out := nn.NewMat(x.R, 2)
				s.ApplyMLP(mlp, x, out)
				want := direct(mlp, x)
				for i := range out.W {
					if out.W[i] != want.W[i] {
						errs <- "scheduled output differs from direct"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSchedPassThrough: Window <= 0 executes inline with no
// goroutines, bit-identical to direct.
func TestSchedPassThrough(t *testing.T) {
	mlp := testMLP(t, 2)
	s := New(Config{})
	defer s.Close()
	if s.Batching() {
		t.Fatal("zero window must not batch")
	}
	rng := rand.New(rand.NewSource(7))
	x := randMat(rng, 5, 6)
	out := nn.NewMat(5, 2)
	s.ApplyMLP(mlp, x, out)
	want := direct(mlp, x)
	for i := range out.W {
		if out.W[i] != want.W[i] {
			t.Fatalf("pass-through differs at %d: %v vs %v", i, out.W[i], want.W[i])
		}
	}
}

// TestSchedFlushOnDrain: items queued behind an hour-long window must
// all complete when Close flushes — graceful shutdown never strands a
// waiter.
func TestSchedFlushOnDrain(t *testing.T) {
	mlp := testMLP(t, 3)
	s := New(Config{Window: time.Hour, MaxRows: 1 << 20, Workers: 2})

	const n = 8
	var wg sync.WaitGroup
	outs := make([]*nn.Mat, n)
	xs := make([]*nn.Mat, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		xs[i] = randMat(rng, 2, 6)
		outs[i] = nn.NewMat(2, 2)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			s.ApplyMLP(mlp, xs[i], outs[i])
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the submits a moment to enqueue behind the huge window.
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not flush queued items")
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		want := direct(mlp, xs[i])
		for j := range want.W {
			if outs[i].W[j] != want.W[j] {
				t.Fatalf("drained item %d differs", i)
			}
		}
	}
	// Submitting after Close still works (direct fallback).
	x := randMat(rand.New(rand.NewSource(99)), 3, 6)
	out := nn.NewMat(3, 2)
	s.ApplyMLP(mlp, x, out)
	want := direct(mlp, x)
	for j := range want.W {
		if out.W[j] != want.W[j] {
			t.Fatal("post-Close submit differs from direct")
		}
	}
}

// TestSchedSizeFlush: a group reaching MaxRows flushes without waiting
// out the window.
func TestSchedSizeFlush(t *testing.T) {
	mlp := testMLP(t, 4)
	s := New(Config{Window: time.Hour, MaxRows: 8, Workers: 2})
	defer s.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			x := randMat(rng, 2, 6) // 4×2 = 8 rows == MaxRows
			out := nn.NewMat(2, 2)
			s.ApplyMLP(mlp, x, out)
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size flush took %v; window wait leaked in", elapsed)
	}
}

// TestSchedSnapshotPinning: items targeting different MLP instances
// (distinct model snapshots) never mix — each result is bit-identical
// to direct scoring through its own weights, even under concurrent
// submission into one scheduler.
func TestSchedSnapshotPinning(t *testing.T) {
	oldM := testMLP(t, 10) // "pre-reload" snapshot
	newM := testMLP(t, 11) // "post-reload" snapshot (different weights)
	s := New(Config{Window: 300 * time.Microsecond, MaxRows: 32, Workers: 4})
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		mlp := oldM
		if g%2 == 1 {
			mlp = newM
		}
		wg.Add(1)
		go func(g int, mlp *nn.MLP) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < 20; r++ {
				x := randMat(rng, 1+rng.Intn(4), 6)
				out := nn.NewMat(x.R, 2)
				s.ApplyMLP(mlp, x, out)
				want := direct(mlp, x)
				for i := range out.W {
					if out.W[i] != want.W[i] {
						errs <- "mixed-weights output detected"
						return
					}
				}
			}
		}(g, mlp)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSchedF32 exercises the approximate path: close to float64 but
// not required to be identical, and deterministic run-to-run.
func TestSchedF32(t *testing.T) {
	mlp := testMLP(t, 5)
	s := New(Config{Window: 100 * time.Microsecond, MaxRows: 16, Workers: 2, F32: true})
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	x := randMat(rng, 6, 6)
	out1 := nn.NewMat(6, 2)
	s.ApplyMLP(mlp, x, out1)
	want := direct(mlp, x)
	for i := range out1.W {
		diff := math.Abs(out1.W[i] - want.W[i])
		scale := math.Max(1, math.Abs(want.W[i]))
		if diff/scale > 1e-4 {
			t.Fatalf("f32 output too far from f64 at %d: %v vs %v", i, out1.W[i], want.W[i])
		}
	}
	out2 := nn.NewMat(6, 2)
	s.ApplyMLP(mlp, x, out2)
	for i := range out1.W {
		if out1.W[i] != out2.W[i] {
			t.Fatal("f32 path not deterministic")
		}
	}
}

// TestSchedRowDedup: duplicate rows inside a coalesced batch are
// computed once and fanned back out bit-identically — correlated
// traffic (many requests over the same trajectory) must not pay for
// the same product row twice. Pinned via the sched.rows.deduped
// counter plus full parity against direct scoring.
func TestSchedRowDedup(t *testing.T) {
	obs.Default.Enable()
	before := obs.Default.Snapshot()
	mlp := testMLP(t, 12)
	s := New(Config{Window: 2 * time.Millisecond, MaxRows: 1 << 20, Workers: 2})

	// Every goroutine submits the SAME matrix: a coalesced batch holds
	// 8 copies of each row, so at least one multi-item batch must dedup.
	shared := randMat(rand.New(rand.NewSource(77)), 4, 6)
	want := direct(mlp, shared)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				x := shared.Clone()
				out := nn.NewMat(x.R, 2)
				s.ApplyMLP(mlp, x, out)
				for i := range out.W {
					if out.W[i] != want.W[i] {
						errs <- "deduped output differs from direct"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	s.Close()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	after := obs.Default.Snapshot()
	if d := after.Counters["sched.rows.deduped"] - before.Counters["sched.rows.deduped"]; d <= 0 {
		t.Fatal("identical concurrent rows never deduped")
	}
}

// TestSchedMemo: the cross-batch scored-row memo serves repeated rows
// bit-identically and without recomputation (sched.memo.hits moves),
// and stays within its byte budget via wholesale eviction.
func TestSchedMemo(t *testing.T) {
	obs.Default.Enable()
	before := obs.Default.Snapshot()
	mlp := testMLP(t, 13)
	s := New(Config{Window: 100 * time.Microsecond, MaxRows: 64, Workers: 2, MemoBytes: 1 << 20})

	x := randMat(rand.New(rand.NewSource(55)), 5, 6)
	want := direct(mlp, x)
	// Two sequential submissions: the second must be served from the
	// memo (same rows, same snapshot) and still match direct exactly.
	for round := 0; round < 2; round++ {
		out := nn.NewMat(x.R, 2)
		s.ApplyMLP(mlp, x.Clone(), out)
		for i := range out.W {
			if out.W[i] != want.W[i] {
				t.Fatalf("round %d: memoized output differs from direct at %d", round, i)
			}
		}
	}
	after := obs.Default.Snapshot()
	if d := after.Counters["sched.memo.hits"] - before.Counters["sched.memo.hits"]; d < int64(x.R) {
		t.Fatalf("memo hits moved by %d, want >= %d", d, x.R)
	}

	// A tiny budget must evict rather than grow without bound.
	s2 := New(Config{Window: 100 * time.Microsecond, MaxRows: 64, Workers: 1, MemoBytes: 256})
	rng := rand.New(rand.NewSource(56))
	for i := 0; i < 20; i++ {
		xi := randMat(rng, 4, 6)
		out := nn.NewMat(4, 2)
		s2.ApplyMLP(mlp, xi, out)
	}
	s2.Close()
	s.Close()
	evicted := obs.Default.Snapshot()
	if evicted.Counters["sched.memo.evictions"] <= before.Counters["sched.memo.evictions"] {
		t.Fatal("memo never evicted under a 256-byte budget")
	}
}

// TestSchedMetrics: the headline instruments move under batching
// (sched.batch.size histogram is the CI smoke's assertion target).
func TestSchedMetrics(t *testing.T) {
	obs.Default.Enable()
	before := obs.Default.Snapshot()
	mlp := testMLP(t, 6)
	s := New(Config{Window: 200 * time.Microsecond, MaxRows: 64, Workers: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < 5; r++ {
				x := randMat(rng, 3, 6)
				out := nn.NewMat(3, 2)
				s.ApplyMLP(mlp, x, out)
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	after := obs.Default.Snapshot()
	if d := after.Counters["sched.items"] - before.Counters["sched.items"]; d != 40 {
		t.Fatalf("sched.items moved by %d, want 40", d)
	}
	if after.Counters["sched.batches"] <= before.Counters["sched.batches"] {
		t.Fatal("no batches executed")
	}
	hb, ha := before.Histograms["sched.batch.size"], after.Histograms["sched.batch.size"]
	if ha.Count <= hb.Count {
		t.Fatal("sched.batch.size histogram did not move")
	}
}
