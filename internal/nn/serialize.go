package nn

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/faultinject"
)

// fpLoadCorrupt simulates a corrupt model file at the deserialization
// boundary (chaos tests; no-op unless armed via faultinject).
var fpLoadCorrupt = faultinject.New("nn.load.corrupt")

// paramFile is the on-disk JSON schema for a parameter set.
type paramFile struct {
	Params []paramEntry `json:"params"`
}

type paramEntry struct {
	Name string    `json:"name"`
	R    int       `json:"r"`
	C    int       `json:"c"`
	W    []float64 `json:"w"`
}

// SaveParams serializes parameters (weights only; optimizer state is
// not persisted) as JSON.
func SaveParams(w io.Writer, params []*Param) error {
	f := paramFile{Params: make([]paramEntry, len(params))}
	for i, p := range params {
		f.Params[i] = paramEntry{Name: p.Name, R: p.W.R, C: p.W.C, W: p.W.W}
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams restores weights written by SaveParams into the given
// parameters, matching by name. Every parameter must be found with the
// same shape; extra entries in the file are ignored. The file is
// validated before any destination parameter is touched: truncated
// files, tensors whose weight count disagrees with their declared
// shape, and tensors containing NaN or ±Inf are all rejected with a
// descriptive error — a model that loads is a model whose every weight
// is finite, so corruption surfaces here instead of as NaN scores (or
// panics) mid-match.
func LoadParams(r io.Reader, params []*Param) error {
	var f paramFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return fmt.Errorf("nn: load params: truncated file: %w", err)
		}
		return fmt.Errorf("nn: load params: %w", err)
	}
	byName := make(map[string]paramEntry, len(f.Params))
	for _, e := range f.Params {
		if err := checkEntry(e); err != nil {
			return err
		}
		byName[e.Name] = e
	}
	if fpLoadCorrupt.Fail() {
		return fmt.Errorf("nn: load params: fault injected: %s", fpLoadCorrupt.Name())
	}
	// Validate every destination before writing any, so a bad file
	// cannot leave a model half-loaded.
	for _, p := range params {
		e, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: load params: %q not in file", p.Name)
		}
		if e.R != p.W.R || e.C != p.W.C {
			return fmt.Errorf("nn: load params: %q shape %d×%d, file has %d×%d",
				p.Name, p.W.R, p.W.C, e.R, e.C)
		}
	}
	for _, p := range params {
		copy(p.W.W, byName[p.Name].W)
	}
	return nil
}

// checkEntry validates one decoded tensor: the weight count must match
// the declared shape (a mismatch means a truncated or hand-edited
// file) and every weight must be finite (standard JSON cannot encode
// NaN/Inf, but writers in other formats and future binary schemas can;
// the invariant "a loaded model has only finite weights" is enforced
// here regardless of the wire format).
func checkEntry(e paramEntry) error {
	if len(e.W) != e.R*e.C {
		return fmt.Errorf("nn: load params: %q has %d weights for declared shape %d×%d (truncated or corrupt file)",
			e.Name, len(e.W), e.R, e.C)
	}
	for i, w := range e.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("nn: load params: %q weight %d is %v (corrupt file)", e.Name, i, w)
		}
	}
	return nil
}
