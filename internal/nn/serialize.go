package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// paramFile is the on-disk JSON schema for a parameter set.
type paramFile struct {
	Params []paramEntry `json:"params"`
}

type paramEntry struct {
	Name string    `json:"name"`
	R    int       `json:"r"`
	C    int       `json:"c"`
	W    []float64 `json:"w"`
}

// SaveParams serializes parameters (weights only; optimizer state is
// not persisted) as JSON.
func SaveParams(w io.Writer, params []*Param) error {
	f := paramFile{Params: make([]paramEntry, len(params))}
	for i, p := range params {
		f.Params[i] = paramEntry{Name: p.Name, R: p.W.R, C: p.W.C, W: p.W.W}
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("nn: save params: %w", err)
	}
	return nil
}

// LoadParams restores weights written by SaveParams into the given
// parameters, matching by name. Every parameter must be found with the
// same shape; extra entries in the file are ignored.
func LoadParams(r io.Reader, params []*Param) error {
	var f paramFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("nn: load params: %w", err)
	}
	byName := make(map[string]paramEntry, len(f.Params))
	for _, e := range f.Params {
		byName[e.Name] = e
	}
	for _, p := range params {
		e, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: load params: %q not in file", p.Name)
		}
		if e.R != p.W.R || e.C != p.W.C {
			return fmt.Errorf("nn: load params: %q shape %d×%d, file has %d×%d",
				p.Name, p.W.R, p.W.C, e.R, e.C)
		}
		copy(p.W.W, e.W)
	}
	return nil
}
