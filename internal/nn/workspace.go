package nn

import "sync"

// Workspace is a bump-allocator for scratch matrices on the inference
// hot path. Callers Take matrices in a fixed per-cycle order, use them,
// and Reset once the cycle's outputs have been consumed; after the
// first few cycles every Take is a reslice of an existing slab and the
// whole cycle runs without heap allocation.
//
// Taken matrices alias workspace storage: they are invalidated by
// Reset and by Release, and must not be retained across either. A
// Workspace is not safe for concurrent use; parallel workers each take
// their own (GetWorkspace per goroutine).
type Workspace struct {
	slabs []workspaceSlab
	next  int
}

type workspaceSlab struct {
	buf []float64
	m   Mat
}

// Take returns an r×c scratch matrix backed by the workspace. Contents
// are NOT zeroed — callers that accumulate must clear it first (MatMulInto
// and the ApplyInto paths overwrite their destination, so they need no
// clearing).
func (w *Workspace) Take(r, c int) *Mat {
	n := r * c
	if w.next == len(w.slabs) {
		w.slabs = append(w.slabs, workspaceSlab{buf: make([]float64, n)})
	}
	s := &w.slabs[w.next]
	w.next++
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.m = Mat{R: r, C: c, W: s.buf[:n]}
	return &s.m
}

// TakeVec returns a length-n scratch slice backed by the workspace
// (contents not zeroed).
func (w *Workspace) TakeVec(n int) []float64 { return w.Take(1, n).W }

// Reset makes every slab available for reuse. Matrices previously
// returned by Take become invalid.
func (w *Workspace) Reset() { w.next = 0 }

// wsPool recycles workspaces across matches so steady-state inference
// performs no slab allocation at all.
var wsPool = sync.Pool{New: func() interface{} { return &Workspace{} }}

// GetWorkspace fetches a (possibly warm) workspace from the shared pool.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace resets ws and returns it to the shared pool. The caller
// must not use ws, or any matrix taken from it, afterwards.
func PutWorkspace(ws *Workspace) {
	ws.Reset()
	wsPool.Put(ws)
}
