package nn

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSetMatMulWorkersRace mutates the matmul worker count while other
// goroutines run parallel products. The setting is a single atomic, so
// every product must still be bit-identical to the sequential
// reference no matter which worker count it observed. Run under -race
// in CI.
func TestSetMatMulWorkersRace(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Big enough to clear matmulParallelMinFlops: 128*96*64 ≈ 786k.
	a := NewMat(128, 96)
	a.Xavier(rng)
	b := NewMat(96, 64)
	b.Xavier(rng)
	want := NewMat(128, 64)
	prev := SetMatMulWorkers(1)
	MatMulInto(want, a, b)
	SetMatMulWorkers(prev)
	defer SetMatMulWorkers(prev)

	var stop atomic.Bool
	mutatorDone := make(chan struct{})
	go func() { // the mutator
		defer close(mutatorDone)
		for i := 0; !stop.Load(); i++ {
			SetMatMulWorkers(1 + i%8)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := NewMat(128, 64)
			for r := 0; r < 20; r++ {
				MatMulInto(out, a, b)
				for i := range want.W {
					if out.W[i] != want.W[i] {
						t.Error("MatMulInto diverged while workers mutated")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	<-mutatorDone
}

// TestWorkspacePoolConcurrentApplyWS pins that pooled workspaces are
// safe across concurrent ApplyWS callers: each goroutine checks out
// its own workspace, so outputs stay bit-identical to a sequential
// reference even with the pool churning. Run under -race in CI.
func TestWorkspacePoolConcurrentApplyWS(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewMLP("m", []int{12, 16, 3}, ActReLU, rng)
	const callers = 8
	xs := make([]*Mat, callers)
	wants := make([]*Mat, callers)
	for i := range xs {
		xs[i] = NewMat(5+i, 12)
		xs[i].Xavier(rng)
		ws := GetWorkspace()
		wants[i] = m.ApplyWS(ws, xs[i]).Clone()
		PutWorkspace(ws)
	}

	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				ws := GetWorkspace()
				got := m.ApplyWS(ws, xs[g])
				for i := range wants[g].W {
					if got.W[i] != wants[g].W[i] {
						t.Error("pooled workspace output diverged")
						PutWorkspace(ws)
						return
					}
				}
				PutWorkspace(ws)
			}
		}(g)
	}
	wg.Wait()
}

// TestWorkspacePoolReuseZeroAllocs pins that a Get/Apply/Put cycle
// reuses pooled slabs: after warmup the full checkout cycle runs
// without heap allocation.
func TestWorkspacePoolReuseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes sync.Pool caching")
	}
	rng := rand.New(rand.NewSource(23))
	m := NewMLP("m", []int{12, 16, 3}, ActReLU, rng)
	x := NewMat(8, 12)
	x.Xavier(rng)
	prev := SetMatMulWorkers(1)
	defer SetMatMulWorkers(prev)
	// Warm the pool slab.
	ws := GetWorkspace()
	m.ApplyWS(ws, x)
	PutWorkspace(ws)
	allocs := testing.AllocsPerRun(100, func() {
		ws := GetWorkspace()
		m.ApplyWS(ws, x)
		PutWorkspace(ws)
	})
	if allocs != 0 {
		t.Fatalf("pooled Get/Apply/Put cycle allocates: %v allocs/op", allocs)
	}
}

// TestMLPF32CloseToF64 bounds the float32 fast path's error against
// the float64 reference and pins that the snapshot is frozen —
// mutating the source MLP afterwards must not change MLPF32 output.
func TestMLPF32CloseToF64(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, act := range []Activation{ActReLU, ActTanh, ActSigmoid} {
		m := NewMLP("m", []int{10, 14, 4}, act, rng)
		f := NewMLPF32(m)
		if f.OutDim() != 4 {
			t.Fatalf("OutDim = %d, want 4", f.OutDim())
		}
		x := NewMat(7, 10)
		x.Xavier(rng)
		ws := GetWorkspace()
		want := m.ApplyWS(ws, x).Clone()
		PutWorkspace(ws)
		got := NewMat(7, 4)
		f.ApplyInto(got, x)
		for i := range want.W {
			diff := math.Abs(got.W[i] - want.W[i])
			scale := math.Max(1, math.Abs(want.W[i]))
			if diff/scale > 1e-4 {
				t.Fatalf("act %v: f32 error %g at %d (%v vs %v)", act, diff, i, got.W[i], want.W[i])
			}
		}
		// Frozen snapshot: perturb source weights, output must not move.
		m.Layers[0].W.W.W[0] += 100
		got2 := NewMat(7, 4)
		f.ApplyInto(got2, x)
		for i := range got.W {
			if got.W[i] != got2.W[i] {
				t.Fatal("MLPF32 not frozen: tracked source weight mutation")
			}
		}
	}
}
