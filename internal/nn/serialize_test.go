package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func testParams(t *testing.T) []*Param {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return []*Param{
		NewParam("layer.w", 3, 4, rng),
		NewParam("layer.b", 1, 4, rng),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := testParams(t)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := testParams(t)
	for _, p := range dst {
		p.W.Zero()
	}
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for i, p := range dst {
		for j := range p.W.W {
			if p.W.W[j] != src[i].W.W[j] {
				t.Fatalf("param %q weight %d: %v != %v", p.Name, j, p.W.W[j], src[i].W.W[j])
			}
		}
	}
}

func TestCheckEntryRejectsNaNInf(t *testing.T) {
	// Standard JSON cannot carry NaN/Inf, so exercise the validation
	// layer directly: the invariant holds for any wire format.
	base := paramEntry{Name: "w", R: 2, C: 2, W: []float64{1, 2, 3, 4}}
	if err := checkEntry(base); err != nil {
		t.Fatalf("clean entry rejected: %v", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		e := base
		e.W = append([]float64(nil), base.W...)
		e.W[2] = bad
		if err := checkEntry(e); err == nil {
			t.Errorf("entry with weight %v accepted", bad)
		}
	}
}

func TestLoadRejectsCorruptNumericSpellings(t *testing.T) {
	// Files hand-edited or written by a non-JSON-strict tool: literal
	// NaN tokens and overflowing exponents. All must fail cleanly at
	// load.
	for _, corrupt := range []string{
		`{"params":[{"name":"layer.w","r":3,"c":4,"w":[1,2,3,4,5,6,7,8,9,10,11,NaN]},{"name":"layer.b","r":1,"c":4,"w":[0,0,0,0]}]}`,
		`{"params":[{"name":"layer.w","r":3,"c":4,"w":[1,2,3,4,5,6,7,8,9,10,11,1e999]},{"name":"layer.b","r":1,"c":4,"w":[0,0,0,0]}]}`,
	} {
		if err := LoadParams(strings.NewReader(corrupt), testParams(t)); err == nil {
			t.Errorf("corrupt file accepted: %.60s", corrupt)
		}
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	src := testParams(t)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the stream at several byte offsets: every prefix must fail
	// with an error, never panic or succeed.
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		cut := int(float64(len(full)) * frac)
		err := LoadParams(bytes.NewReader(full[:cut]), testParams(t))
		if err == nil {
			t.Errorf("truncated file (%d of %d bytes) accepted", cut, len(full))
		}
	}
	// Empty file.
	if err := LoadParams(bytes.NewReader(nil), testParams(t)); err == nil {
		t.Error("empty file accepted")
	}
}

func TestLoadRejectsShortTensor(t *testing.T) {
	// Declared 3×4 but only 5 weights: a truncated tensor must not
	// partially overwrite the destination.
	shortJSON := `{"params":[
		{"name":"layer.w","r":3,"c":4,"w":[1,2,3,4,5]},
		{"name":"layer.b","r":1,"c":4,"w":[0,0,0,0]}]}`
	dst := testParams(t)
	before := append([]float64(nil), dst[0].W.W...)
	if err := LoadParams(strings.NewReader(shortJSON), dst); err == nil {
		t.Fatal("short tensor accepted")
	}
	for i, w := range dst[0].W.W {
		if w != before[i] {
			t.Fatal("failed load modified destination weights")
		}
	}
}

func TestLoadRejectsShapeMismatchWithoutPartialWrite(t *testing.T) {
	src := testParams(t)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	dst := []*Param{
		NewParam("layer.w", 3, 4, rng), // matches
		NewParam("layer.b", 2, 4, rng), // shape mismatch
	}
	before := append([]float64(nil), dst[0].W.W...)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), dst); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	for i, w := range dst[0].W.W {
		if w != before[i] {
			t.Fatal("failed load modified matching parameter before validation finished")
		}
	}
}

func TestLoadFaultInjection(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	faultinject.DisarmAll()
	src := testParams(t)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm("nn.load.corrupt"); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), testParams(t)); err == nil {
		t.Error("armed nn.load.corrupt did not fail the load")
	}
	faultinject.DisarmAll()
	if err := LoadParams(bytes.NewReader(buf.Bytes()), testParams(t)); err != nil {
		t.Errorf("disarmed load failed: %v", err)
	}
}
