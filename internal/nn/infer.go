package nn

import "math"

// Forward-only (inference) implementations of the layers, operating on
// plain matrices without tape bookkeeping. These are used on the hot
// matching path where gradients are not needed.

// Apply computes x·W + b without autodiff.
func (l *Linear) Apply(x *Mat) *Mat {
	out := NewMat(x.R, l.W.W.C)
	MatMulInto(out, x, l.W.W)
	for i := 0; i < out.R; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += l.B.W.W[j]
		}
	}
	return out
}

// Apply runs the MLP forward without autodiff.
func (m *MLP) Apply(x *Mat) *Mat {
	for i, l := range m.Layers {
		x = l.Apply(x)
		if i < len(m.Layers)-1 {
			applyActInPlace(m.Act, x)
		}
	}
	return x
}

func applyActInPlace(a Activation, x *Mat) {
	switch a {
	case ActTanh:
		for i, v := range x.W {
			x.W[i] = math.Tanh(v)
		}
	case ActSigmoid:
		for i, v := range x.W {
			x.W[i] = 1 / (1 + math.Exp(-v))
		}
	default:
		for i, v := range x.W {
			if v < 0 {
				x.W[i] = 0
			}
		}
	}
}

// Apply computes the attention read-out without autodiff: query 1×d,
// keys/values n×d. It returns the 1×d output and the attention weights.
func (a *Attention) Apply(query, keys, values *Mat) (*Mat, []float64) {
	n := keys.R
	q := NewMat(1, a.Wq.W.C)
	MatMulInto(q, query, a.Wq.W)
	k := NewMat(n, a.Wk.W.C)
	MatMulInto(k, keys, a.Wk.W)
	h := a.Wq.W.C
	scores := make([]float64, n)
	feat := NewMat(1, 2*h)
	for i := 0; i < n; i++ {
		copy(feat.W[:h], q.W)
		copy(feat.W[h:], k.Row(i))
		for j := range feat.W {
			feat.W[j] = math.Tanh(feat.W[j])
		}
		var s float64
		for j, v := range feat.W {
			s += v * a.Wv.W.W[j]
		}
		scores[i] = s
	}
	w := Softmax(scores)
	out := NewMat(1, values.C)
	for i := 0; i < n; i++ {
		row := values.Row(i)
		for j, v := range row {
			out.W[j] += w[i] * v
		}
	}
	return out, w
}
