package nn

import "math"

// Forward-only (inference) implementations of the layers, operating on
// plain matrices without tape bookkeeping. These are used on the hot
// matching path where gradients are not needed.
//
// Every layer has two forms: Apply, which allocates its result, and an
// allocation-free form (ApplyInto / ApplyWS) that writes into
// caller-owned storage or a Workspace. The batched forms score a whole
// k×d candidate batch in one MatMulInto instead of k single-row calls;
// they are arithmetically identical to row-at-a-time application
// because each output row accumulates in the same order either way.

// Apply computes x·W + b without autodiff.
func (l *Linear) Apply(x *Mat) *Mat {
	out := NewMat(x.R, l.W.W.C)
	l.ApplyInto(out, x)
	return out
}

// ApplyInto computes dst = x·W + b without allocating. dst must be
// preallocated x.R×out and must not alias x.
func (l *Linear) ApplyInto(dst, x *Mat) {
	MatMulInto(dst, x, l.W.W)
	bias := l.B.W.W
	for i := 0; i < dst.R; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// OutDim returns the MLP's output width (columns of the last layer).
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].W.W.C }

// InDim returns the MLP's input width (rows of the first layer weight).
func (m *MLP) InDim() int { return m.Layers[0].W.W.R }

// Apply runs the MLP forward without autodiff.
func (m *MLP) Apply(x *Mat) *Mat {
	for i, l := range m.Layers {
		x = l.Apply(x)
		if i < len(m.Layers)-1 {
			applyActInPlace(m.Act, x)
		}
	}
	return x
}

// ApplyWS runs the MLP forward using workspace scratch for every
// intermediate and the output. The returned matrix is owned by ws and
// is invalidated by ws.Reset.
func (m *MLP) ApplyWS(ws *Workspace, x *Mat) *Mat {
	for i, l := range m.Layers {
		out := ws.Take(x.R, l.W.W.C)
		l.ApplyInto(out, x)
		if i < len(m.Layers)-1 {
			applyActInPlace(m.Act, out)
		}
		x = out
	}
	return x
}

func applyActInPlace(a Activation, x *Mat) {
	switch a {
	case ActTanh:
		for i, v := range x.W {
			x.W[i] = math.Tanh(v)
		}
	case ActSigmoid:
		for i, v := range x.W {
			x.W[i] = 1 / (1 + math.Exp(-v))
		}
	default:
		for i, v := range x.W {
			if v < 0 {
				x.W[i] = 0
			}
		}
	}
}

// Apply computes the attention read-out without autodiff: query 1×d,
// keys/values n×d. It returns the 1×d output and the attention weights.
func (a *Attention) Apply(query, keys, values *Mat) (*Mat, []float64) {
	out := NewMat(1, values.C)
	w := make([]float64, keys.R)
	a.ApplyInto(out, w, nil, query, keys, values)
	return out, w
}

// ApplyWS computes the attention read-out with all scratch (and the
// outputs) taken from ws. The returned matrix and weights alias
// workspace storage and are invalidated by ws.Reset.
func (a *Attention) ApplyWS(ws *Workspace, query, keys, values *Mat) (*Mat, []float64) {
	out := ws.Take(1, values.C)
	w := ws.TakeVec(keys.R)
	a.ApplyInto(out, w, ws, query, keys, values)
	return out, w
}

// SelfApplyAllWS computes, for every row q_i of x, the additive
// attention read-out with x as queries, keys, and values — the batched
// form of n separate ApplyWS calls (Eq. 6 over a whole trajectory).
// Because the additive score W_v·tanh(W_q·q_i ⊕ W_k·k_j) separates into
// a query term and a key term, the n² scores reduce to two n×h
// projections and an outer sum, and the weighted read-out becomes one
// n×n · n×d product. The returned n×d matrix is owned by ws.
func (a *Attention) SelfApplyAllWS(ws *Workspace, x *Mat) *Mat {
	n, h := x.R, a.Wq.W.C
	q := ws.Take(n, h)
	MatMulInto(q, x, a.Wq.W)
	k := ws.Take(n, a.Wk.W.C)
	MatMulInto(k, x, a.Wk.W)
	wv := a.Wv.W.W
	qdot := ws.TakeVec(n)
	kdot := ws.TakeVec(n)
	for i := 0; i < n; i++ {
		var sq, sk float64
		for j, v := range q.Row(i) {
			sq += math.Tanh(v) * wv[j]
		}
		for j, v := range k.Row(i) {
			sk += math.Tanh(v) * wv[h+j]
		}
		qdot[i], kdot[i] = sq, sk
	}
	w := ws.Take(n, n)
	for i := 0; i < n; i++ {
		row := w.Row(i)
		for j := range row {
			row[j] = qdot[i] + kdot[j]
		}
		softmaxInto(row, row)
	}
	out := ws.Take(n, x.C)
	MatMulInto(out, w, x)
	return out
}

// AttKeys caches the key-side state of additive attention over a fixed
// key/value matrix, so repeated single-query read-outs (the per-road
// trajectory relevance of Eq. 10, asked for every candidate segment of
// a trajectory) skip the n×h key projection and its tanh reduction.
type AttKeys struct {
	att  *Attention
	kv   *Mat      // shared keys-and-values matrix
	kdot []float64 // per-key additive score contribution
}

// PrecomputeKeys builds the key-side cache for kv (used as both keys
// and values). kv is retained by reference and must stay unchanged for
// the cache's lifetime.
func (a *Attention) PrecomputeKeys(kv *Mat) *AttKeys {
	h := a.Wq.W.C
	k := NewMat(kv.R, a.Wk.W.C)
	MatMulInto(k, kv, a.Wk.W)
	wv := a.Wv.W.W
	kdot := make([]float64, kv.R)
	for i := range kdot {
		var s float64
		for j, v := range k.Row(i) {
			s += math.Tanh(v) * wv[h+j]
		}
		kdot[i] = s
	}
	return &AttKeys{att: a, kv: kv, kdot: kdot}
}

// QueryWS computes the attention read-out for one 1×d query against
// the cached keys. The returned 1×d matrix and weights are owned by ws.
func (ak *AttKeys) QueryWS(ws *Workspace, query *Mat) (*Mat, []float64) {
	h := ak.att.Wq.W.C
	q := ws.Take(1, h)
	MatMulInto(q, query, ak.att.Wq.W)
	wv := ak.att.Wv.W.W
	var qdot float64
	for j, v := range q.W {
		qdot += math.Tanh(v) * wv[j]
	}
	n := ak.kv.R
	w := ws.TakeVec(n)
	for i, kd := range ak.kdot {
		w[i] = qdot + kd
	}
	softmaxInto(w, w)
	out := ws.Take(1, ak.kv.C)
	for j := range out.W {
		out.W[j] = 0
	}
	for i := 0; i < n; i++ {
		row := ak.kv.Row(i)
		wi := w[i]
		for j, v := range row {
			out.W[j] += wi * v
		}
	}
	return out, w
}

// QueryAllWS computes the attention read-out for every row of queries
// (m×d) against the cached keys in one pass: the query projection
// Q = queries·W_q is a single matrix product and the per-row
// qdot/softmax/read-out mirrors QueryWS's arithmetic order exactly, so
// row r of the result is bit-identical to QueryWS over queries row r
// alone (MatMulInto accumulates each output row independently). The
// returned m×d matrix is owned by ws.
func (ak *AttKeys) QueryAllWS(ws *Workspace, queries *Mat) *Mat {
	h := ak.att.Wq.W.C
	q := ws.Take(queries.R, h)
	MatMulInto(q, queries, ak.att.Wq.W)
	wv := ak.att.Wv.W.W
	n := ak.kv.R
	w := ws.TakeVec(n)
	out := ws.Take(queries.R, ak.kv.C)
	for r := 0; r < queries.R; r++ {
		var qdot float64
		for j, v := range q.Row(r) {
			qdot += math.Tanh(v) * wv[j]
		}
		for i, kd := range ak.kdot {
			w[i] = qdot + kd
		}
		softmaxInto(w, w)
		orow := out.Row(r)
		for j := range orow {
			orow[j] = 0
		}
		for i := 0; i < n; i++ {
			row := ak.kv.Row(i)
			wi := w[i]
			for j, v := range row {
				orow[j] += wi * v
			}
		}
	}
	return out
}

// ApplyInto computes the attention read-out into caller-owned storage:
// out must be 1×values.C, weights length keys.R. ws supplies the q/k
// projection scratch (nil allocates it). The additive score
// W_v·tanh(W_q·q ⊕ W_k·k_j) splits into a query half that is constant
// across j and a per-key half, so the query contribution is reduced
// once instead of re-copied and re-reduced per key.
func (a *Attention) ApplyInto(out *Mat, weights []float64, ws *Workspace, query, keys, values *Mat) {
	n := keys.R
	h := a.Wq.W.C
	var q, k *Mat
	if ws != nil {
		q = ws.Take(1, h)
		k = ws.Take(n, a.Wk.W.C)
	} else {
		q = NewMat(1, h)
		k = NewMat(n, a.Wk.W.C)
	}
	MatMulInto(q, query, a.Wq.W)
	MatMulInto(k, keys, a.Wk.W)
	// Constant query half of every additive score.
	var qdot float64
	wv := a.Wv.W.W
	for j, v := range q.W {
		qdot += math.Tanh(v) * wv[j]
	}
	scores := weights // reuse the output slice as score scratch
	for i := 0; i < n; i++ {
		s := qdot
		row := k.Row(i)
		for j, v := range row {
			s += math.Tanh(v) * wv[h+j]
		}
		scores[i] = s
	}
	softmaxInto(weights, scores)
	for j := range out.W {
		out.W[j] = 0
	}
	for i := 0; i < n; i++ {
		row := values.Row(i)
		wi := weights[i]
		for j, v := range row {
			out.W[j] += wi * v
		}
	}
}
