package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(2, 2, []Triple{{Row: 2, Col: 0, Val: 1}}); err == nil {
		t.Error("out-of-range row did not error")
	}
	if _, err := NewSparse(2, 2, []Triple{{Row: 0, Col: -1, Val: 1}}); err == nil {
		t.Error("negative col did not error")
	}
}

func TestSparseDuplicatesSummed(t *testing.T) {
	s, err := NewSparse(2, 2, []Triple{
		{0, 1, 2}, {0, 1, 3}, {1, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	x := FromSlice(2, 1, []float64{10, 20})
	dst := NewMat(2, 1)
	s.MulInto(dst, x)
	if dst.W[0] != 100 || dst.W[1] != 10 { // row0: 5*20, row1: 1*10
		t.Errorf("MulInto = %v", dst.W)
	}
}

func TestSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, c, k := 3+rng.Intn(8), 3+rng.Intn(8), 2+rng.Intn(5)
		dense := NewMat(r, c)
		var triples []Triple
		for e := 0; e < r*c/2; e++ {
			i, j := rng.Intn(r), rng.Intn(c)
			v := rng.NormFloat64()
			triples = append(triples, Triple{i, j, v})
			dense.W[i*c+j] += v
		}
		s, err := NewSparse(r, c, triples)
		if err != nil {
			t.Fatal(err)
		}
		x := NewMat(c, k)
		x.Xavier(rng)
		want := NewMat(r, k)
		MatMulInto(want, dense, x)
		got := NewMat(r, k)
		s.MulInto(got, x)
		for i := range want.W {
			if math.Abs(want.W[i]-got.W[i]) > 1e-9 {
				t.Fatalf("sparse/dense mismatch at %d: %v vs %v", i, got.W[i], want.W[i])
			}
		}
		// Transpose agreement.
		st, err := s.Transpose()
		if err != nil {
			t.Fatal(err)
		}
		denseT := NewMat(c, r)
		TransposeInto(denseT, dense)
		y := NewMat(r, k)
		y.Xavier(rng)
		wantT := NewMat(c, k)
		MatMulInto(wantT, denseT, y)
		gotT := NewMat(c, k)
		st.MulInto(gotT, y)
		for i := range wantT.W {
			if math.Abs(wantT.W[i]-gotT.W[i]) > 1e-9 {
				t.Fatalf("transpose mismatch at %d", i)
			}
		}
	}
}

func TestRowNormalize(t *testing.T) {
	s, err := NewSparse(3, 3, []Triple{
		{0, 0, 2}, {0, 1, 6}, {1, 2, 5},
		// row 2 empty
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RowNormalize()
	x := FromSlice(3, 1, []float64{1, 1, 1})
	dst := NewMat(3, 1)
	s.MulInto(dst, x)
	if math.Abs(dst.W[0]-1) > 1e-12 || math.Abs(dst.W[1]-1) > 1e-12 || dst.W[2] != 0 {
		t.Errorf("normalized row sums = %v", dst.W)
	}
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := NewSparse(4, 3, []Triple{
		{0, 0, 1.5}, {0, 2, -0.5}, {1, 1, 2}, {3, 0, 0.7}, {3, 2, 1.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	p := NewParam("x", 3, 2, rng)
	checkGrad(t, "spmm", p, func(tp *Tape) *T {
		y := tp.SpMM(s, st, tp.Var(p))
		return tp.SumAll(tp.Mul(y, y))
	})
}
