//go:build race

package nn

// raceEnabled reports whether the race detector is active; alloc-pinned
// tests skip under it because instrumentation changes pool behavior.
const raceEnabled = true
