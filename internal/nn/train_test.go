package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimize ||W - target||² — Adam should drive W close to target.
	rng := rand.New(rand.NewSource(1))
	p := NewParam("w", 2, 2, rng)
	target := FromSlice(2, 2, []float64{1, -2, 3, 0.5})
	opt := NewAdam()
	opt.LR = 0.05
	opt.WeightDecay = 0
	for iter := 0; iter < 500; iter++ {
		tp := NewTape()
		diff := tp.Sub(tp.Var(p), tp.Const(target))
		loss := tp.SumAll(tp.Mul(diff, diff))
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		opt.Step([]*Param{p})
	}
	for i := range p.W.W {
		if math.Abs(p.W.W[i]-target.W[i]) > 0.01 {
			t.Fatalf("Adam did not converge: %v vs %v", p.W.W, target.W)
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewMLP("xor", []int{2, 8, 2}, ActTanh, rng)
	x := FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	target := SmoothedTargets(4, 2, labels, 0)
	opt := NewAdam()
	opt.LR = 0.05
	opt.WeightDecay = 0
	var last float64
	for iter := 0; iter < 800; iter++ {
		tp := NewTape()
		loss := tp.CrossEntropy(mlp.Forward(tp, tp.Const(x)), target)
		last = loss.Val.W[0]
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		opt.Step(mlp.Params())
	}
	if last > 0.1 {
		t.Fatalf("XOR loss did not converge: %v", last)
	}
	// All four points classified correctly.
	tp := NewTape()
	out := mlp.Forward(tp, tp.Const(x))
	for i, want := range labels {
		row := out.Val.Row(i)
		got := 0
		if row[1] > row[0] {
			got = 1
		}
		if got != want {
			t.Errorf("XOR sample %d: predicted %d, want %d (logits %v)", i, got, want, row)
		}
	}
}

func TestAttentionLearnsToSelect(t *testing.T) {
	// Teach the attention to copy the value row whose key has the
	// largest first coordinate — a key-only property that additive
	// attention can express through Wk.
	rng := rand.New(rand.NewSource(3))
	d, h, n := 4, 8, 5
	att := NewAttention("sel", d, h, rng)
	opt := NewAdam()
	opt.LR = 0.02
	opt.WeightDecay = 0

	mkExample := func(rng *rand.Rand) (q, k *Mat, idx int) {
		k = NewMat(n, d)
		k.Xavier(rng)
		k.ScaleInPlace(3)
		idx = 0
		for i := 1; i < n; i++ {
			if k.At(i, 0) > k.At(idx, 0) {
				idx = i
			}
		}
		q = NewMat(1, d)
		q.Xavier(rng)
		return q, k, idx
	}

	var last float64
	for iter := 0; iter < 800; iter++ {
		q, k, idx := mkExample(rng)
		tp := NewTape()
		out, _ := att.Forward(tp, tp.Const(q), tp.Const(k), tp.Const(k))
		want := FromSlice(1, d, k.Row(idx))
		diff := tp.Sub(out, tp.Const(want))
		loss := tp.SumAll(tp.Mul(diff, diff))
		last = loss.Val.W[0]
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		opt.Step(att.Params())
	}
	if last > 3.0 {
		t.Fatalf("attention selection loss %v did not fall", last)
	}
	// Attention weight peaks on the max-first-coordinate row on fresh
	// examples, most of the time.
	testRng := rand.New(rand.NewSource(99))
	correct := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		q, k, idx := mkExample(testRng)
		tp := NewTape()
		_, w := att.Forward(tp, tp.Const(q), tp.Const(k), tp.Const(k))
		best, bestIdx := -1.0, -1
		for i := 0; i < n; i++ {
			if v := w.Val.At(i, 0); v > best {
				best, bestIdx = v, i
			}
		}
		if bestIdx == idx {
			correct++
		}
	}
	if correct < trials*3/4 {
		t.Errorf("attention selected the right row %d/%d times", correct, trials)
	}
}

func TestClipGradNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewParam("w", 1, 2, rng)
	p.Grad.W[0], p.Grad.W[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	if math.Abs(math.Hypot(p.Grad.W[0], p.Grad.W[1])-1) > 1e-12 {
		t.Errorf("post-clip norm = %v", math.Hypot(p.Grad.W[0], p.Grad.W[1]))
	}
	// Below the cap: untouched.
	p.Grad.W[0], p.Grad.W[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.W[0] != 0.3 {
		t.Error("clip modified small gradient")
	}
}

func TestSmoothedTargets(t *testing.T) {
	tg := SmoothedTargets(2, 4, []int{0, 3}, 0.1)
	// Rows sum to 1.
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			sum += tg.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	if tg.At(0, 0) <= tg.At(0, 1) {
		t.Error("true class not dominant")
	}
	if math.Abs(tg.At(0, 1)-0.025) > 1e-12 {
		t.Errorf("off-class mass = %v, want 0.025", tg.At(0, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("label/row mismatch did not panic")
		}
	}()
	SmoothedTargets(3, 2, []int{0}, 0.1)
}

func TestEmbeddingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEmbedding("emb", 10, 4, rng)
	tp := NewTape()
	out := e.Forward(tp, []int{3, 3, 7})
	if out.R() != 3 || out.C() != 4 {
		t.Fatalf("embedding shape %d×%d", out.R(), out.C())
	}
	for j := 0; j < 4; j++ {
		if out.Val.At(0, j) != out.Val.At(1, j) {
			t.Error("same id produced different rows")
		}
		if out.Val.At(0, j) != e.Table.W.At(3, j) {
			t.Error("row does not match table")
		}
	}
	if len(e.Params()) != 1 {
		t.Error("embedding params wrong")
	}
}

func TestSaveLoadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mlp := NewMLP("m", []int{2, 3, 2}, ActReLU, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, mlp.Params()); err != nil {
		t.Fatal(err)
	}
	// Restore into a freshly initialized copy.
	mlp2 := NewMLP("m", []int{2, 3, 2}, ActReLU, rand.New(rand.NewSource(77)))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), mlp2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range mlp.Params() {
		q := mlp2.Params()[i]
		for j := range p.W.W {
			if p.W.W[j] != q.W.W[j] {
				t.Fatalf("param %s differs after round trip", p.Name)
			}
		}
	}
	// Missing param errors.
	other := NewParam("nope", 2, 2, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), []*Param{other}); err == nil {
		t.Error("missing param did not error")
	}
	// Shape mismatch errors.
	bad := NewParam("m.0.W", 5, 5, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), []*Param{bad}); err == nil {
		t.Error("shape mismatch did not error")
	}
	if err := LoadParams(bytes.NewBufferString("{"), mlp.Params()); err == nil {
		t.Error("bad JSON did not error")
	}
}

func TestNewMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMLP with one size did not panic")
		}
	}()
	NewMLP("bad", []int{3}, ActReLU, rand.New(rand.NewSource(1)))
}
