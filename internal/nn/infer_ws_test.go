package nn

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// The workspace-backed inference paths must agree bit-for-bit with the
// allocating Apply paths (which the infer_test.go suite already pins to
// the tape forward pass), and must be allocation-free once warm.

func TestLinearApplyIntoMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear("l", 6, 4, rng)
	x := NewMat(7, 6)
	x.Xavier(rng)
	want := l.Apply(x)
	got := NewMat(7, 4)
	got.Fill(math.NaN()) // ApplyInto must fully overwrite
	l.ApplyInto(got, x)
	for i := range want.W {
		if want.W[i] != got.W[i] {
			t.Fatalf("ApplyInto mismatch at %d: %v vs %v", i, got.W[i], want.W[i])
		}
	}
}

func TestMLPApplyWSMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	for _, act := range []Activation{ActReLU, ActTanh, ActSigmoid} {
		m := NewMLP("m", []int{5, 9, 3}, act, rng)
		for trial := 0; trial < 3; trial++ { // repeat to exercise slab reuse
			x := NewMat(4+trial, 5)
			x.Xavier(rng)
			want := m.Apply(x)
			ws.Reset()
			got := m.ApplyWS(ws, x)
			for i := range want.W {
				if want.W[i] != got.W[i] {
					t.Fatalf("act %v trial %d: ApplyWS mismatch at %d", act, trial, i)
				}
			}
		}
	}
}

func TestAttentionApplyWSMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewAttention("a", 5, 3, rng)
	q := NewMat(1, 5)
	q.Xavier(rng)
	k := NewMat(8, 5)
	k.Xavier(rng)
	v := NewMat(8, 5)
	v.Xavier(rng)
	wantOut, wantW := a.Apply(q, k, v)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	for trial := 0; trial < 3; trial++ {
		ws.Reset()
		gotOut, gotW := a.ApplyWS(ws, q, k, v)
		for i := range wantOut.W {
			if wantOut.W[i] != gotOut.W[i] {
				t.Fatalf("trial %d: output mismatch at %d", trial, i)
			}
		}
		for i := range wantW {
			if wantW[i] != gotW[i] {
				t.Fatalf("trial %d: weight mismatch at %d", trial, i)
			}
		}
	}
}

func TestSelfApplyAllMatchesPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := NewAttention("a", 6, 4, rng)
	x := NewMat(9, 6)
	x.Xavier(rng)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	got := a.SelfApplyAllWS(ws, x)
	for i := 0; i < x.R; i++ {
		q := &Mat{R: 1, C: x.C, W: x.Row(i)}
		want, _ := a.Apply(q, x, x)
		for j := range want.W {
			if math.Abs(want.W[j]-got.At(i, j)) > 1e-12 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, got.At(i, j), want.W[j])
			}
		}
	}
}

func TestAttKeysQueryMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewAttention("a", 6, 4, rng)
	kv := NewMat(11, 6)
	kv.Xavier(rng)
	ak := a.PrecomputeKeys(kv)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	for trial := 0; trial < 4; trial++ {
		q := NewMat(1, 6)
		q.Xavier(rng)
		wantOut, wantW := a.Apply(q, kv, kv)
		ws.Reset()
		gotOut, gotW := ak.QueryWS(ws, q)
		for j := range wantOut.W {
			if math.Abs(wantOut.W[j]-gotOut.W[j]) > 1e-12 {
				t.Fatalf("trial %d: output mismatch at %d", trial, j)
			}
		}
		for j := range wantW {
			if math.Abs(wantW[j]-gotW[j]) > 1e-12 {
				t.Fatalf("trial %d: weight mismatch at %d", trial, j)
			}
		}
	}
}

// TestAttKeysQueryAllMatchesQuery pins the multi-row read-out contract:
// row r of QueryAllWS is bit-identical to QueryWS over that row alone
// (the batched roadProb fill in core relies on this to stay equal to
// the scalar path).
func TestAttKeysQueryAllMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := NewAttention("a", 6, 4, rng)
	kv := NewMat(11, 6)
	kv.Xavier(rng)
	ak := a.PrecomputeKeys(kv)
	qs := NewMat(7, 6)
	qs.Xavier(rng)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	ws.Reset()
	all := ak.QueryAllWS(ws, qs)
	got := append([]float64(nil), all.W...)
	for r := 0; r < qs.R; r++ {
		ws.Reset()
		q := &Mat{R: 1, C: qs.C, W: qs.Row(r)}
		want, _ := ak.QueryWS(ws, q)
		for j, w := range want.W {
			if g := got[r*all.C+j]; g != w {
				t.Fatalf("row %d col %d: QueryAllWS %v != QueryWS %v", r, j, g, w)
			}
		}
	}
}

// TestBatchedInferenceZeroAllocs pins the batched-path contract: after
// warmup, MLP.ApplyWS and Attention.ApplyWS run without a single heap
// allocation.
func TestBatchedInferenceZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewMLP("m", []int{48, 24, 2}, ActReLU, rng)
	att := NewAttention("a", 24, 12, rng)
	x := NewMat(64, 48)
	x.Xavier(rng)
	q := NewMat(1, 24)
	q.Xavier(rng)
	kv := NewMat(32, 24)
	kv.Xavier(rng)
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	// Cap the matmul pool at 1: goroutine forking inside a parallel
	// MatMulInto allocates by design; the 0-alloc contract is about the
	// per-call buffer discipline.
	prev := SetMatMulWorkers(1)
	defer SetMatMulWorkers(prev)
	ws.Reset()
	m.ApplyWS(ws, x) // warm the slabs
	att.ApplyWS(ws, q, kv, kv)
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		m.ApplyWS(ws, x)
		att.ApplyWS(ws, q, kv, kv)
	})
	if allocs != 0 {
		t.Fatalf("batched inference allocates: %v allocs/op", allocs)
	}
}

// TestMatMulParallelMatchesSequential pins that row-parallel products
// are bit-identical to sequential ones, under the race detector, at
// GOMAXPROCS 1 and N.
func TestMatMulParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// Big enough to clear matmulParallelMinFlops: 128*96*64 ≈ 786k.
	a := NewMat(128, 96)
	a.Xavier(rng)
	b := NewMat(96, 64)
	b.Xavier(rng)
	want := NewMat(128, 64)
	prev := SetMatMulWorkers(1)
	MatMulInto(want, a, b)
	SetMatMulWorkers(prev)

	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{2, 3, 8} {
			SetMatMulWorkers(workers)
			got := NewMat(128, 64)
			MatMulInto(got, a, b)
			for i := range want.W {
				if want.W[i] != got.W[i] {
					t.Fatalf("GOMAXPROCS %d workers %d: mismatch at %d", procs, workers, i)
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
	SetMatMulWorkers(prev)

	// Concurrent callers must not trample each other (workspaces are
	// per-goroutine; MatMulInto itself shares only read-only inputs).
	SetMatMulWorkers(4)
	defer SetMatMulWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := NewMat(128, 64)
			MatMulInto(out, a, b)
			for i := range want.W {
				if want.W[i] != out.W[i] {
					t.Error("concurrent MatMulInto diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
