package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMat(0, 3) did not panic")
		}
	}()
	NewMat(0, 3)
}

func TestFromSliceAndAccessors(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Errorf("At wrong: %v", m.W)
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Error("Set failed")
	}
	if r := m.Row(1); r[0] != 4 || r[1] != 9 {
		t.Errorf("Row = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestCloneIndependence(t *testing.T) {
	m := RowVec(1, 2, 3)
	c := m.Clone()
	c.W[0] = 99
	if m.W[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestInPlaceOps(t *testing.T) {
	m := RowVec(1, 2)
	m.AddInPlace(RowVec(10, 20))
	if m.W[0] != 11 || m.W[1] != 22 {
		t.Errorf("AddInPlace = %v", m.W)
	}
	m.ScaleInPlace(2)
	if m.W[0] != 22 || m.W[1] != 44 {
		t.Errorf("ScaleInPlace = %v", m.W)
	}
	m.Fill(7)
	if m.W[0] != 7 || m.W[1] != 7 {
		t.Errorf("Fill = %v", m.W)
	}
	m.Zero()
	if m.W[0] != 0 {
		t.Error("Zero failed")
	}
	if got := RowVec(-3, 2).MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestMatMulInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewMat(2, 2)
	MatMulInto(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.W[i] != w {
			t.Fatalf("MatMulInto = %v, want %v", dst.W, want)
		}
	}
}

func TestTransposeInto(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := NewMat(3, 2)
	TransposeInto(dst, a)
	want := []float64{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if dst.W[i] != w {
			t.Fatalf("TransposeInto = %v, want %v", dst.W, want)
		}
	}
}

func TestXavierRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(10, 20)
	m.Xavier(rng)
	limit := math.Sqrt(6.0 / 30.0)
	var nonZero int
	for _, v := range m.W {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %v exceeds limit %v", v, limit)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < 150 {
		t.Errorf("Xavier left too many zeros: %d non-zero of 200", nonZero)
	}
}

func TestSoftmaxStable(t *testing.T) {
	// Large logits must not overflow.
	out := Softmax([]float64{1000, 1000, 999})
	var sum float64
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax produced %v", out)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if out[0] != out[1] || out[2] >= out[0] {
		t.Errorf("softmax ordering wrong: %v", out)
	}
}
