package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randMat produces a bounded random matrix for property tests.
func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.W {
		m.W[i] = rng.NormFloat64()
	}
	return m
}

// TestMatMulAssociativity checks (A·B)·C == A·(B·C) on random shapes.
func TestMatMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		a, b, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		d := 1 + rng.Intn(5)
		A, B, C := randMat(rng, a, b), randMat(rng, b, c), randMat(rng, c, d)
		AB := NewMat(a, c)
		MatMulInto(AB, A, B)
		left := NewMat(a, d)
		MatMulInto(left, AB, C)
		BC := NewMat(b, d)
		MatMulInto(BC, B, C)
		right := NewMat(a, d)
		MatMulInto(right, A, BC)
		for i := range left.W {
			if math.Abs(left.W[i]-right.W[i]) > 1e-9 {
				t.Fatalf("associativity broken at %d: %v vs %v", i, left.W[i], right.W[i])
			}
		}
	}
}

// TestTransposeInvolution checks (Aᵀ)ᵀ == A.
func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		A := randMat(rng, r, c)
		At := NewMat(c, r)
		TransposeInto(At, A)
		Att := NewMat(r, c)
		TransposeInto(Att, At)
		for i := range A.W {
			if A.W[i] != Att.W[i] {
				t.Fatal("transpose involution broken")
			}
		}
	}
}

// TestSoftmaxProperties uses testing/quick: outputs are a probability
// distribution and invariant to constant shifts.
func TestSoftmaxProperties(t *testing.T) {
	f := func(a, b, c float64, shiftRaw float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 50)
		}
		xs := []float64{clamp(a), clamp(b), clamp(c)}
		shift := clamp(shiftRaw)
		p := Softmax(xs)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		q := Softmax(shifted)
		for i := range p {
			if math.Abs(p[i]-q[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSparseLinearity checks S·(x+y) == S·x + S·y.
func TestSparseLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		r, c := 2+rng.Intn(6), 2+rng.Intn(6)
		var triples []Triple
		for e := 0; e < r*c/2+1; e++ {
			triples = append(triples, Triple{rng.Intn(r), rng.Intn(c), rng.NormFloat64()})
		}
		s, err := NewSparse(r, c, triples)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(4)
		x, y := randMat(rng, c, k), randMat(rng, c, k)
		xy := x.Clone()
		xy.AddInPlace(y)
		sum := NewMat(r, k)
		s.MulInto(sum, xy)
		sx, sy := NewMat(r, k), NewMat(r, k)
		s.MulInto(sx, x)
		s.MulInto(sy, y)
		sx.AddInPlace(sy)
		for i := range sum.W {
			if math.Abs(sum.W[i]-sx.W[i]) > 1e-9 {
				t.Fatal("sparse linearity broken")
			}
		}
	}
}

// TestAdamStepDirection: for a single-parameter quadratic the first
// Adam step must move the weight toward the minimum.
func TestAdamStepDirection(t *testing.T) {
	f := func(target float64) bool {
		if math.IsNaN(target) || math.IsInf(target, 0) {
			return true
		}
		target = math.Mod(target, 100)
		p := NewZeroParam("w", 1, 1)
		p.W.W[0] = 0
		if target == 0 {
			return true
		}
		opt := NewAdam()
		opt.WeightDecay = 0
		// d/dw (w-target)² = 2(w-target)
		p.Grad.W[0] = 2 * (p.W.W[0] - target)
		before := math.Abs(p.W.W[0] - target)
		opt.Step([]*Param{p})
		return math.Abs(p.W.W[0]-target) < before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCrossEntropyMinimum: CE against a one-hot target is minimized
// when logits put all mass on the target class.
func TestCrossEntropyMinimum(t *testing.T) {
	target := SmoothedTargets(1, 3, []int{1}, 0)
	good := FromSlice(1, 3, []float64{-10, 10, -10})
	bad := FromSlice(1, 3, []float64{10, -10, -10})
	tp := NewTape()
	lGood := tp.CrossEntropy(tp.Const(good), target).Val.W[0]
	lBad := tp.CrossEntropy(tp.Const(bad), target).Val.W[0]
	if lGood >= lBad {
		t.Errorf("CE(good)=%v >= CE(bad)=%v", lGood, lBad)
	}
	if lGood > 1e-6 {
		t.Errorf("CE at optimum = %v, want ~0", lGood)
	}
}
