package nn

import (
	"fmt"
	"math/rand"
)

// Param is a trainable parameter: a weight matrix with an accumulated
// gradient and Adam moment buffers. Create with NewParam; reuse across
// tapes (one tape per forward/backward pass).
type Param struct {
	Name string
	W    *Mat
	Grad *Mat
	// Adam state, lazily allocated by the optimizer.
	m, v *Mat
	step int
}

// NewParam allocates a named r×c parameter initialized with Xavier
// uniform values.
func NewParam(name string, r, c int, rng *rand.Rand) *Param {
	p := &Param{Name: name, W: NewMat(r, c), Grad: NewMat(r, c)}
	p.W.Xavier(rng)
	return p
}

// NewZeroParam allocates a zero-initialized parameter (used for biases).
func NewZeroParam(name string, r, c int) *Param {
	return &Param{Name: name, W: NewMat(r, c), Grad: NewMat(r, c)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// T is a tensor node on an autodiff tape: a value matrix, a gradient
// buffer filled in by the backward pass, and a closure that propagates
// the node's gradient to its inputs.
type T struct {
	tape *Tape
	Val  *Mat
	Grad *Mat
	back func()
}

// R returns the row count of the node's value.
func (t *T) R() int { return t.Val.R }

// C returns the column count of the node's value.
func (t *T) C() int { return t.Val.C }

// Tape records a computation for reverse-mode differentiation. Nodes
// are appended in execution order, which is already a topological
// order, so Backward walks them in reverse. A tape is used for exactly
// one forward/backward pass; create a new one per example or batch.
// Tapes are not safe for concurrent use.
type Tape struct {
	nodes  []*T
	params []paramBinding
}

type paramBinding struct {
	p    *Param
	node *T
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// node appends a new tensor node with the given value and backward
// closure.
func (tp *Tape) node(val *Mat, back func()) *T {
	t := &T{tape: tp, Val: val, Grad: NewMat(val.R, val.C), back: back}
	tp.nodes = append(tp.nodes, t)
	return t
}

// Const places a fixed matrix on the tape. Its gradient is computed but
// goes nowhere. The matrix is not copied; do not mutate it until the
// pass completes.
func (tp *Tape) Const(m *Mat) *T {
	return tp.node(m, nil)
}

// Var places a trainable parameter on the tape. After Backward, the
// node's gradient is accumulated into p.Grad. The parameter matrix is
// not copied.
func (tp *Tape) Var(p *Param) *T {
	t := tp.node(p.W, nil)
	tp.params = append(tp.params, paramBinding{p: p, node: t})
	return t
}

// Backward seeds the gradient of loss (which must be a 1×1 node on this
// tape) with 1 and propagates through the tape in reverse, then
// accumulates parameter gradients into their Grad buffers. It returns
// an error if loss is not scalar or not on this tape.
func (tp *Tape) Backward(loss *T) error {
	if loss.tape != tp {
		return fmt.Errorf("nn: Backward: loss is not on this tape")
	}
	if loss.Val.R != 1 || loss.Val.C != 1 {
		return fmt.Errorf("nn: Backward: loss must be 1×1, got %d×%d", loss.Val.R, loss.Val.C)
	}
	loss.Grad.W[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		if n := tp.nodes[i]; n.back != nil {
			n.back()
		}
	}
	for _, b := range tp.params {
		b.p.Grad.AddInPlace(b.node.Grad)
	}
	return nil
}
