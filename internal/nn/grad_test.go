package nn

import (
	"math"
	"math/rand"
	"testing"
)

// checkGrad verifies the analytic gradient of a scalar-valued function
// of one parameter against central finite differences.
//
// buildLoss must construct the loss on a fresh tape, reading the
// parameter's current weights.
func checkGrad(t *testing.T, name string, p *Param, buildLoss func(tp *Tape) *T) {
	t.Helper()
	p.ZeroGrad()
	tp := NewTape()
	loss := buildLoss(tp)
	if err := tp.Backward(loss); err != nil {
		t.Fatalf("%s: backward: %v", name, err)
	}
	const h = 1e-6
	for i := range p.W.W {
		orig := p.W.W[i]
		p.W.W[i] = orig + h
		lp := buildLoss(NewTape()).Val.W[0]
		p.W.W[i] = orig - h
		lm := buildLoss(NewTape()).Val.W[0]
		p.W.W[i] = orig
		numeric := (lp - lm) / (2 * h)
		analytic := p.Grad.W[i]
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
		if math.Abs(numeric-analytic)/scale > 1e-4 {
			t.Errorf("%s: grad[%d] analytic %v vs numeric %v", name, i, analytic, numeric)
		}
	}
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewParam("w", 3, 2, rng)
	x := NewMat(2, 3)
	x.Xavier(rng)
	checkGrad(t, "matmul", p, func(tp *Tape) *T {
		return tp.SumAll(tp.MatMul(tp.Const(x), tp.Var(p)))
	})
}

func TestGradAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewParam("w", 2, 2, rng)
	o := NewMat(2, 2)
	o.Xavier(rng)
	checkGrad(t, "add", p, func(tp *Tape) *T {
		return tp.SumAll(tp.Add(tp.Var(p), tp.Const(o)))
	})
	checkGrad(t, "sub", p, func(tp *Tape) *T {
		return tp.SumAll(tp.Sub(tp.Const(o), tp.Var(p)))
	})
	checkGrad(t, "scale", p, func(tp *Tape) *T {
		return tp.SumAll(tp.Scale(tp.Var(p), -2.5))
	})
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewParam("b", 1, 3, rng)
	x := NewMat(4, 3)
	x.Xavier(rng)
	checkGrad(t, "addrow-bias", b, func(tp *Tape) *T {
		// Square so the gradient depends on the bias value.
		y := tp.AddRow(tp.Const(x), tp.Var(b))
		return tp.SumAll(tp.Mul(y, y))
	})
}

func TestGradMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewParam("w", 2, 3, rng)
	o := NewMat(2, 3)
	o.Xavier(rng)
	checkGrad(t, "mul", p, func(tp *Tape) *T {
		return tp.SumAll(tp.Mul(tp.Var(p), tp.Const(o)))
	})
	checkGrad(t, "mul-self", p, func(tp *Tape) *T {
		v := tp.Var(p)
		return tp.SumAll(tp.Mul(v, v))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewParam("w", 3, 3, rng)
	p.W.ScaleInPlace(2) // move away from the ReLU kink at 0... then nudge
	for i := range p.W.W {
		if math.Abs(p.W.W[i]) < 0.05 {
			p.W.W[i] = 0.1
		}
	}
	checkGrad(t, "relu", p, func(tp *Tape) *T {
		return tp.SumAll(tp.ReLU(tp.Var(p)))
	})
	checkGrad(t, "tanh", p, func(tp *Tape) *T {
		return tp.SumAll(tp.Tanh(tp.Var(p)))
	})
	checkGrad(t, "sigmoid", p, func(tp *Tape) *T {
		return tp.SumAll(tp.Sigmoid(tp.Var(p)))
	})
}

func TestGradConcatRepeatTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewParam("w", 2, 3, rng)
	o := NewMat(2, 2)
	o.Xavier(rng)
	checkGrad(t, "concat", p, func(tp *Tape) *T {
		y := tp.ConcatCols(tp.Var(p), tp.Const(o))
		return tp.SumAll(tp.Mul(y, y))
	})
	q := NewParam("q", 1, 4, rng)
	checkGrad(t, "repeatrow", q, func(tp *Tape) *T {
		y := tp.RepeatRow(tp.Var(q), 3)
		return tp.SumAll(tp.Mul(y, y))
	})
	checkGrad(t, "transpose", p, func(tp *Tape) *T {
		y := tp.Transpose(tp.Var(p))
		return tp.SumAll(tp.Mul(y, y))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewParam("w", 3, 4, rng)
	mask := NewMat(3, 4)
	mask.Xavier(rng)
	checkGrad(t, "softmaxrows", p, func(tp *Tape) *T {
		y := tp.SoftmaxRows(tp.Var(p))
		return tp.SumAll(tp.Mul(y, tp.Const(mask)))
	})
}

func TestGradGatherSumMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := NewParam("emb", 5, 3, rng)
	checkGrad(t, "gather", p, func(tp *Tape) *T {
		y := tp.Gather(tp.Var(p), []int{0, 2, 2, 4}) // repeated index
		return tp.SumAll(tp.Mul(y, y))
	})
	checkGrad(t, "sumrows", p, func(tp *Tape) *T {
		y := tp.SumRows(tp.Var(p))
		return tp.SumAll(tp.Mul(y, y))
	})
	checkGrad(t, "meanrows", p, func(tp *Tape) *T {
		y := tp.MeanRows(tp.Var(p))
		return tp.SumAll(tp.Mul(y, y))
	})
}

func TestGradCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewParam("logits-w", 3, 4, rng)
	x := NewMat(2, 3)
	x.Xavier(rng)
	target := SmoothedTargets(2, 4, []int{1, 3}, 0.1)
	checkGrad(t, "crossentropy", p, func(tp *Tape) *T {
		logits := tp.MatMul(tp.Const(x), tp.Var(p))
		return tp.CrossEntropy(logits, target)
	})
}

func TestGradAttentionEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	att := NewAttention("att", 4, 3, rng)
	query := NewMat(1, 4)
	query.Xavier(rng)
	keys := NewMat(5, 4)
	keys.Xavier(rng)
	for _, p := range att.Params() {
		p := p
		checkGrad(t, "attention."+p.Name, p, func(tp *Tape) *T {
			out, _ := att.Forward(tp, tp.Const(query), tp.Const(keys), tp.Const(keys))
			return tp.SumAll(tp.Mul(out, out))
		})
	}
}

func TestGradMLPEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mlp := NewMLP("mlp", []int{3, 5, 2}, ActTanh, rng)
	x := NewMat(4, 3)
	x.Xavier(rng)
	target := SmoothedTargets(4, 2, []int{0, 1, 1, 0}, 0.1)
	for _, p := range mlp.Params() {
		p := p
		checkGrad(t, "mlp."+p.Name, p, func(tp *Tape) *T {
			return tp.CrossEntropy(mlp.Forward(tp, tp.Const(x)), target)
		})
	}
}

func TestGradSharedNodeFanOut(t *testing.T) {
	// A node consumed by two downstream ops must receive gradient from
	// both paths.
	rng := rand.New(rand.NewSource(12))
	p := NewParam("w", 2, 2, rng)
	checkGrad(t, "fanout", p, func(tp *Tape) *T {
		v := tp.Var(p)
		a := tp.Scale(v, 2)
		b := tp.Tanh(v)
		return tp.SumAll(tp.Add(a, b))
	})
}

func TestGradStackRows(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := NewParam("w", 2, 3, rng)
	o := NewMat(1, 3)
	o.Xavier(rng)
	checkGrad(t, "stackrows", p, func(tp *Tape) *T {
		v := tp.Var(p)
		a := tp.Gather(v, []int{0})
		b := tp.Gather(v, []int{1})
		y := tp.StackRows([]*T{a, tp.Const(o), b, v})
		return tp.SumAll(tp.Mul(y, y))
	})
}

func TestGradRMSNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := NewParam("w", 3, 4, rng)
	mask := NewMat(3, 4)
	mask.Xavier(rng)
	checkGrad(t, "rmsnorm", p, func(tp *Tape) *T {
		y := tp.RMSNorm(tp.Var(p), 1e-6)
		return tp.SumAll(tp.Mul(y, tp.Const(mask)))
	})
}

func TestBackwardValidation(t *testing.T) {
	tp := NewTape()
	rng := rand.New(rand.NewSource(13))
	p := NewParam("w", 2, 2, rng)
	v := tp.Var(p)
	if err := tp.Backward(v); err == nil {
		t.Error("Backward on non-scalar did not error")
	}
	other := NewTape()
	loss := other.SumAll(other.Var(p))
	if err := tp.Backward(loss); err == nil {
		t.Error("Backward with foreign node did not error")
	}
}
