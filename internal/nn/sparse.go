package nn

import (
	"fmt"
	"sort"
)

// Sparse is an immutable CSR sparse matrix used for graph adjacency in
// message passing. Build with NewSparse.
type Sparse struct {
	R, C   int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// Triple is one (row, col, value) entry for sparse construction.
type Triple struct {
	Row, Col int
	Val      float64
}

// NewSparse builds an R×C CSR matrix from triples. Duplicate (row, col)
// entries are summed. Out-of-range indices return an error.
func NewSparse(r, c int, triples []Triple) (*Sparse, error) {
	for _, t := range triples {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			return nil, fmt.Errorf("nn: sparse entry (%d,%d) outside %d×%d", t.Row, t.Col, r, c)
		}
	}
	sorted := append([]Triple(nil), triples...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	s := &Sparse{R: r, C: c, rowPtr: make([]int, r+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		s.colIdx = append(s.colIdx, sorted[i].Col)
		s.vals = append(s.vals, v)
		s.rowPtr[sorted[i].Row+1] = len(s.colIdx)
		i = j
	}
	for i := 1; i <= r; i++ {
		if s.rowPtr[i] < s.rowPtr[i-1] {
			s.rowPtr[i] = s.rowPtr[i-1]
		}
	}
	return s, nil
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.vals) }

// RowNormalize scales each row to sum to 1 (rows summing to 0 are left
// unchanged), implementing the 1/|N| neighbor averaging of Eq. 4 —
// weighted by edge values, so weighted relations (CO counts) average
// proportionally.
func (s *Sparse) RowNormalize() {
	for i := 0; i < s.R; i++ {
		var sum float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			sum += s.vals[k]
		}
		if sum == 0 {
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			s.vals[k] /= sum
		}
	}
}

// Transpose returns a new CSR matrix equal to sᵀ. An error is only
// possible for a corrupted receiver (indices outside the declared
// shape), matching the package's construction error discipline.
func (s *Sparse) Transpose() (*Sparse, error) {
	triples := make([]Triple, 0, s.NNZ())
	for i := 0; i < s.R; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			triples = append(triples, Triple{Row: s.colIdx[k], Col: i, Val: s.vals[k]})
		}
	}
	t, err := NewSparse(s.C, s.R, triples)
	if err != nil {
		return nil, fmt.Errorf("nn: transpose: %w", err)
	}
	return t, nil
}

// MulInto computes dst = s · x for dense x. dst must be s.R×x.C and
// x must be s.C×x.C.
func (s *Sparse) MulInto(dst, x *Mat) {
	if x.R != s.C || dst.R != s.R || dst.C != x.C {
		panic(fmt.Sprintf("nn: Sparse.MulInto: %d×%d · %d×%d -> %d×%d", s.R, s.C, x.R, x.C, dst.R, dst.C))
	}
	dst.Zero()
	for i := 0; i < s.R; i++ {
		dRow := dst.Row(i)
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			v := s.vals[k]
			xRow := x.Row(s.colIdx[k])
			for j, xv := range xRow {
				dRow[j] += v * xv
			}
		}
	}
}

// SpMM multiplies a constant sparse matrix by a dense tensor: out =
// s·x, with gradient dX += sᵀ·dOut. st must be s.Transpose(); passing
// it explicitly lets callers amortize the transpose across steps.
func (tp *Tape) SpMM(s, st *Sparse, x *T) *T {
	val := NewMat(s.R, x.C())
	s.MulInto(val, x.Val)
	var out *T
	out = tp.node(val, func() {
		g := NewMat(x.R(), x.C())
		st.MulInto(g, out.Grad)
		x.Grad.AddInPlace(g)
	})
	return out
}
