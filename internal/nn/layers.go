package nn

import (
	"fmt"
	"math/rand"
)

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*Param
}

// Linear is a fully-connected layer: y = x·W + b.
type Linear struct {
	W *Param // in×out
	B *Param // 1×out
}

// NewLinear creates a Linear layer with Xavier weights and zero bias.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: NewParam(name+".W", in, out, rng),
		B: NewZeroParam(name+".b", 1, out),
	}
}

// Forward applies the layer to x (n×in) on the tape.
func (l *Linear) Forward(tp *Tape, x *T) *T {
	return tp.AddRow(tp.MatMul(x, tp.Var(l.W)), tp.Var(l.B))
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Activation selects the nonlinearity between MLP layers.
type Activation int

// Supported activations.
const (
	ActReLU Activation = iota
	ActTanh
	ActSigmoid
)

// apply places the activation on the tape.
func (a Activation) apply(tp *Tape, x *T) *T {
	switch a {
	case ActTanh:
		return tp.Tanh(x)
	case ActSigmoid:
		return tp.Sigmoid(x)
	default:
		return tp.ReLU(x)
	}
}

// MLP is a multilayer perceptron with a shared hidden activation and a
// linear output layer — the classifier head used by Eqs. 7, 8, 10, 12.
type MLP struct {
	Layers []*Linear
	Act    Activation
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes
// [in, hidden, out] yields two Linear layers. At least two sizes are
// required; it panics otherwise (programmer error).
func NewMLP(name string, sizes []int, act Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP %q: need at least 2 sizes", name))
	}
	m := &MLP{Act: act}
	for i := 1; i < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("%s.%d", name, i-1), sizes[i-1], sizes[i], rng))
	}
	return m
}

// Forward applies the MLP: activation after every layer except the last.
func (m *MLP) Forward(tp *Tape, x *T) *T {
	for i, l := range m.Layers {
		x = l.Forward(tp, x)
		if i < len(m.Layers)-1 {
			x = m.Act.apply(tp, x)
		}
	}
	return x
}

// Params returns all layer parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Attention is the additive attention of Eqs. 6 and 9:
//
//	score_j = W_v · tanh(W_q·q ⊕ W_k·k_j)
//	out     = Σ_j softmax(score)_j · v_j
//
// where q is a single query row, and k/v are the key and value rows.
type Attention struct {
	Wq *Param // d×h
	Wk *Param // d×h
	Wv *Param // 2h×1
}

// NewAttention creates an additive attention module with input
// dimension d and attention hidden size h.
func NewAttention(name string, d, h int, rng *rand.Rand) *Attention {
	return &Attention{
		Wq: NewParam(name+".Wq", d, h, rng),
		Wk: NewParam(name+".Wk", d, h, rng),
		Wv: NewParam(name+".Wv", 2*h, 1, rng),
	}
}

// Forward computes the attention read-out: query is 1×d, keys and
// values are n×d (value rows weighted by key scores). It returns a 1×d
// row and, for introspection, the n×1 attention weights node.
func (a *Attention) Forward(tp *Tape, query, keys, values *T) (out, weights *T) {
	n := keys.R()
	q := tp.MatMul(query, tp.Var(a.Wq))       // 1×h
	k := tp.MatMul(keys, tp.Var(a.Wk))        // n×h
	qTiled := tp.RepeatRow(q, n)              // n×h
	feat := tp.Tanh(tp.ConcatCols(qTiled, k)) // n×2h
	scores := tp.MatMul(feat, tp.Var(a.Wv))   // n×1
	// Softmax over the n scores: transpose to a row, softmax, keep row.
	wRow := tp.SoftmaxRows(tp.Transpose(scores)) // 1×n
	out = tp.MatMul(wRow, values)                // 1×d
	return out, tp.Transpose(wRow)
}

// Params returns the attention parameters.
func (a *Attention) Params() []*Param { return []*Param{a.Wq, a.Wk, a.Wv} }

// Embedding is a trainable id→vector table (the W_init of §IV-B,
// realized as a lookup since one-hot times a matrix is a row select).
type Embedding struct {
	Table *Param // V×d
}

// NewEmbedding creates an embedding table for vocab ids [0, v).
func NewEmbedding(name string, v, d int, rng *rand.Rand) *Embedding {
	return &Embedding{Table: NewParam(name, v, d, rng)}
}

// Forward looks up the embedding rows for ids.
func (e *Embedding) Forward(tp *Tape, ids []int) *T {
	return tp.Gather(tp.Var(e.Table), ids)
}

// Params returns the table parameter.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }
