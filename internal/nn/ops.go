package nn

import (
	"fmt"
	"math"
)

// MatMul returns a·b with gradient propagation to both inputs.
func (tp *Tape) MatMul(a, b *T) *T {
	if a.C() != b.R() {
		panic(fmt.Sprintf("nn: MatMul: %d×%d · %d×%d", a.R(), a.C(), b.R(), b.C()))
	}
	val := NewMat(a.R(), b.C())
	MatMulInto(val, a.Val, b.Val)
	var out *T
	out = tp.node(val, func() {
		// dA += dOut · Bᵀ
		bt := NewMat(b.C(), b.R())
		TransposeInto(bt, b.Val)
		da := NewMat(a.R(), a.C())
		MatMulInto(da, out.Grad, bt)
		a.Grad.AddInPlace(da)
		// dB += Aᵀ · dOut
		at := NewMat(a.C(), a.R())
		TransposeInto(at, a.Val)
		db := NewMat(b.R(), b.C())
		MatMulInto(db, at, out.Grad)
		b.Grad.AddInPlace(db)
	})
	return out
}

// Add returns a + b elementwise. Shapes must match.
func (tp *Tape) Add(a, b *T) *T {
	a.Val.mustSameShape(b.Val, "Add")
	val := a.Val.Clone()
	val.AddInPlace(b.Val)
	var out *T
	out = tp.node(val, func() {
		a.Grad.AddInPlace(out.Grad)
		b.Grad.AddInPlace(out.Grad)
	})
	return out
}

// Sub returns a - b elementwise.
func (tp *Tape) Sub(a, b *T) *T {
	return tp.Add(a, tp.Scale(b, -1))
}

// AddRow broadcasts the 1×c row vector b over every row of a (n×c),
// the bias-add of a linear layer.
func (tp *Tape) AddRow(a, b *T) *T {
	if b.R() != 1 || b.C() != a.C() {
		panic(fmt.Sprintf("nn: AddRow: %d×%d + %d×%d", a.R(), a.C(), b.R(), b.C()))
	}
	val := a.Val.Clone()
	for i := 0; i < val.R; i++ {
		row := val.Row(i)
		for j := range row {
			row[j] += b.Val.W[j]
		}
	}
	var out *T
	out = tp.node(val, func() {
		a.Grad.AddInPlace(out.Grad)
		for i := 0; i < out.Grad.R; i++ {
			row := out.Grad.Row(i)
			for j := range row {
				b.Grad.W[j] += row[j]
			}
		}
	})
	return out
}

// Mul returns a ⊙ b elementwise. Shapes must match.
func (tp *Tape) Mul(a, b *T) *T {
	a.Val.mustSameShape(b.Val, "Mul")
	val := NewMat(a.R(), a.C())
	for i := range val.W {
		val.W[i] = a.Val.W[i] * b.Val.W[i]
	}
	var out *T
	out = tp.node(val, func() {
		for i := range out.Grad.W {
			a.Grad.W[i] += out.Grad.W[i] * b.Val.W[i]
			b.Grad.W[i] += out.Grad.W[i] * a.Val.W[i]
		}
	})
	return out
}

// Scale returns s·a.
func (tp *Tape) Scale(a *T, s float64) *T {
	val := a.Val.Clone()
	val.ScaleInPlace(s)
	var out *T
	out = tp.node(val, func() {
		for i := range out.Grad.W {
			a.Grad.W[i] += s * out.Grad.W[i]
		}
	})
	return out
}

// ReLU returns max(0, a) elementwise.
func (tp *Tape) ReLU(a *T) *T {
	val := NewMat(a.R(), a.C())
	for i, v := range a.Val.W {
		if v > 0 {
			val.W[i] = v
		}
	}
	var out *T
	out = tp.node(val, func() {
		for i := range out.Grad.W {
			if a.Val.W[i] > 0 {
				a.Grad.W[i] += out.Grad.W[i]
			}
		}
	})
	return out
}

// Tanh returns tanh(a) elementwise.
func (tp *Tape) Tanh(a *T) *T {
	val := NewMat(a.R(), a.C())
	for i, v := range a.Val.W {
		val.W[i] = math.Tanh(v)
	}
	var out *T
	out = tp.node(val, func() {
		for i := range out.Grad.W {
			a.Grad.W[i] += out.Grad.W[i] * (1 - val.W[i]*val.W[i])
		}
	})
	return out
}

// Sigmoid returns 1/(1+e^-a) elementwise.
func (tp *Tape) Sigmoid(a *T) *T {
	val := NewMat(a.R(), a.C())
	for i, v := range a.Val.W {
		val.W[i] = 1 / (1 + math.Exp(-v))
	}
	var out *T
	out = tp.node(val, func() {
		for i := range out.Grad.W {
			a.Grad.W[i] += out.Grad.W[i] * val.W[i] * (1 - val.W[i])
		}
	})
	return out
}

// ConcatCols returns [a | b]: rows must match.
func (tp *Tape) ConcatCols(a, b *T) *T {
	if a.R() != b.R() {
		panic(fmt.Sprintf("nn: ConcatCols: %d×%d | %d×%d", a.R(), a.C(), b.R(), b.C()))
	}
	val := NewMat(a.R(), a.C()+b.C())
	for i := 0; i < a.R(); i++ {
		copy(val.Row(i)[:a.C()], a.Val.Row(i))
		copy(val.Row(i)[a.C():], b.Val.Row(i))
	}
	var out *T
	out = tp.node(val, func() {
		for i := 0; i < a.R(); i++ {
			gRow := out.Grad.Row(i)
			aRow := a.Grad.Row(i)
			bRow := b.Grad.Row(i)
			for j := range aRow {
				aRow[j] += gRow[j]
			}
			for j := range bRow {
				bRow[j] += gRow[a.C()+j]
			}
		}
	})
	return out
}

// RepeatRow tiles the 1×c row vector a into n rows.
func (tp *Tape) RepeatRow(a *T, n int) *T {
	if a.R() != 1 {
		panic(fmt.Sprintf("nn: RepeatRow: input is %d×%d", a.R(), a.C()))
	}
	val := NewMat(n, a.C())
	for i := 0; i < n; i++ {
		copy(val.Row(i), a.Val.W)
	}
	var out *T
	out = tp.node(val, func() {
		for i := 0; i < n; i++ {
			row := out.Grad.Row(i)
			for j := range row {
				a.Grad.W[j] += row[j]
			}
		}
	})
	return out
}

// SoftmaxRows applies softmax independently to each row.
func (tp *Tape) SoftmaxRows(a *T) *T {
	val := NewMat(a.R(), a.C())
	for i := 0; i < a.R(); i++ {
		softmaxInto(val.Row(i), a.Val.Row(i))
	}
	var out *T
	out = tp.node(val, func() {
		for i := 0; i < a.R(); i++ {
			g := out.Grad.Row(i)
			y := val.Row(i)
			var dot float64
			for j := range g {
				dot += g[j] * y[j]
			}
			aRow := a.Grad.Row(i)
			for j := range aRow {
				aRow[j] += y[j] * (g[j] - dot)
			}
		}
	})
	return out
}

// softmaxInto writes softmax(src) into dst with max-subtraction for
// numerical stability.
func softmaxInto(dst, src []float64) {
	mx := src[0]
	for _, v := range src[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range src {
		dst[i] = math.Exp(v - mx)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Transpose returns aᵀ.
func (tp *Tape) Transpose(a *T) *T {
	val := NewMat(a.C(), a.R())
	TransposeInto(val, a.Val)
	var out *T
	out = tp.node(val, func() {
		g := NewMat(a.R(), a.C())
		TransposeInto(g, out.Grad)
		a.Grad.AddInPlace(g)
	})
	return out
}

// Gather selects the given rows of a (an embedding lookup). Gradients
// scatter-add back to the selected rows. Indices out of range panic.
func (tp *Tape) Gather(a *T, indices []int) *T {
	val := NewMat(len(indices), a.C())
	for i, idx := range indices {
		copy(val.Row(i), a.Val.Row(idx))
	}
	idx := append([]int(nil), indices...)
	var out *T
	out = tp.node(val, func() {
		for i, id := range idx {
			row := a.Grad.Row(id)
			g := out.Grad.Row(i)
			for j := range row {
				row[j] += g[j]
			}
		}
	})
	return out
}

// SumRows returns the 1×c column-wise sum over all rows of a.
func (tp *Tape) SumRows(a *T) *T {
	val := NewMat(1, a.C())
	for i := 0; i < a.R(); i++ {
		row := a.Val.Row(i)
		for j, v := range row {
			val.W[j] += v
		}
	}
	var out *T
	out = tp.node(val, func() {
		for i := 0; i < a.R(); i++ {
			row := a.Grad.Row(i)
			for j := range row {
				row[j] += out.Grad.W[j]
			}
		}
	})
	return out
}

// MeanRows returns the 1×c column-wise mean over all rows of a.
func (tp *Tape) MeanRows(a *T) *T {
	return tp.Scale(tp.SumRows(a), 1/float64(a.R()))
}

// SumAll returns the 1×1 sum of every element of a.
func (tp *Tape) SumAll(a *T) *T {
	val := NewMat(1, 1)
	for _, v := range a.Val.W {
		val.W[0] += v
	}
	var out *T
	out = tp.node(val, func() {
		g := out.Grad.W[0]
		for i := range a.Grad.W {
			a.Grad.W[i] += g
		}
	})
	return out
}

// CrossEntropy computes the mean cross-entropy between row-wise
// softmax(logits) and the given target distribution rows, with label
// smoothing already folded into target (see SmoothedTargets). Returns a
// 1×1 loss node.
func (tp *Tape) CrossEntropy(logits *T, target *Mat) *T {
	logits.Val.mustSameShape(target, "CrossEntropy")
	n := logits.R()
	prob := NewMat(n, logits.C())
	val := NewMat(1, 1)
	for i := 0; i < n; i++ {
		softmaxInto(prob.Row(i), logits.Val.Row(i))
		tRow := target.Row(i)
		pRow := prob.Row(i)
		for j := range tRow {
			if tRow[j] > 0 {
				val.W[0] -= tRow[j] * math.Log(math.Max(pRow[j], 1e-12))
			}
		}
	}
	val.W[0] /= float64(n)
	var out *T
	out = tp.node(val, func() {
		g := out.Grad.W[0] / float64(n)
		for i := 0; i < n; i++ {
			lRow := logits.Grad.Row(i)
			pRow := prob.Row(i)
			tRow := target.Row(i)
			for j := range lRow {
				lRow[j] += g * (pRow[j] - tRow[j])
			}
		}
	})
	return out
}

// SmoothedTargets builds one-hot target rows with label smoothing eps
// (the paper uses 0.1, §IV-D): the true class gets 1-eps, the rest
// share eps uniformly.
func SmoothedTargets(n, classes int, labels []int, eps float64) *Mat {
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SmoothedTargets: %d labels for %d rows", len(labels), n))
	}
	t := NewMat(n, classes)
	off := eps / float64(classes)
	for i, lbl := range labels {
		for j := 0; j < classes; j++ {
			t.Set(i, j, off)
		}
		t.Set(i, lbl, 1-eps+off)
	}
	return t
}

// RMSNorm normalizes each row by its root-mean-square:
// y = x / sqrt(mean(x²) + eps). Used by the transformer baseline for
// training stability.
func (tp *Tape) RMSNorm(a *T, eps float64) *T {
	n := a.C()
	val := NewMat(a.R(), n)
	rms := make([]float64, a.R())
	for i := 0; i < a.R(); i++ {
		row := a.Val.Row(i)
		var sq float64
		for _, v := range row {
			sq += v * v
		}
		r := math.Sqrt(sq/float64(n) + eps)
		rms[i] = r
		out := val.Row(i)
		for j, v := range row {
			out[j] = v / r
		}
	}
	var out *T
	out = tp.node(val, func() {
		for i := 0; i < a.R(); i++ {
			x := a.Val.Row(i)
			g := out.Grad.Row(i)
			r := rms[i]
			var dot float64
			for j := range g {
				dot += g[j] * x[j]
			}
			ga := a.Grad.Row(i)
			r3n := r * r * r * float64(n)
			for j := range ga {
				ga[j] += g[j]/r - x[j]*dot/r3n
			}
		}
	})
	return out
}

// StackRows vertically concatenates tensors with equal column counts.
// At least one input is required (programmer error otherwise).
func (tp *Tape) StackRows(parts []*T) *T {
	if len(parts) == 0 {
		panic("nn: StackRows: no inputs")
	}
	cols := parts[0].C()
	rows := 0
	for _, p := range parts {
		if p.C() != cols {
			panic(fmt.Sprintf("nn: StackRows: column mismatch %d vs %d", p.C(), cols))
		}
		rows += p.R()
	}
	val := NewMat(rows, cols)
	at := 0
	for _, p := range parts {
		copy(val.W[at*cols:], p.Val.W)
		at += p.R()
	}
	ps := append([]*T(nil), parts...)
	var out *T
	out = tp.node(val, func() {
		at := 0
		for _, p := range ps {
			n := p.R() * cols
			for i := 0; i < n; i++ {
				p.Grad.W[i] += out.Grad.W[at*cols+i]
			}
			at += p.R()
		}
	})
	return out
}

// Softmax applies a numerically stable softmax to a plain vector,
// returning a new slice (inference-path helper, no autodiff).
func Softmax(xs []float64) []float64 {
	out := make([]float64, len(xs))
	softmaxInto(out, xs)
	return out
}
