package nn

import (
	"fmt"
	"math"
	"sync"
)

// Float32 forward path for served models: a read-only single-precision
// twin of an MLP's weights, applied with float32 arithmetic throughout
// and widened back to float64 only at the output boundary.
//
// This path is APPROXIMATE. It exists for serving deployments that
// trade the last ~7 decimal digits of score precision for throughput
// (half the weight/activation memory traffic); it is never used by
// training, the CLI, or any parity suite, and outputs are NOT
// byte-comparable to the float64 path. The scheduler only enables it
// behind an explicit opt-in (lhmm-serve -f32).

// MLPF32 is the frozen float32 twin of an MLP. Build with NewMLPF32;
// safe for concurrent use (all state is read-only after construction).
type MLPF32 struct {
	layers []linearF32
	act    Activation
	in     int
	out    int
}

type linearF32 struct {
	in, out int
	w       []float32 // in×out row-major
	b       []float32 // out
}

// NewMLPF32 snapshots m's weights as float32. The twin does not track
// later weight updates; rebuild after training or reload.
func NewMLPF32(m *MLP) *MLPF32 {
	f := &MLPF32{act: m.Act, in: m.InDim(), out: m.OutDim()}
	for _, l := range m.Layers {
		lw, lb := l.W.W, l.B.W.W
		lf := linearF32{
			in:  lw.R,
			out: lw.C,
			w:   make([]float32, len(lw.W)),
			b:   make([]float32, len(lb)),
		}
		for i, v := range lw.W {
			lf.w[i] = float32(v)
		}
		for i, v := range lb {
			lf.b[i] = float32(v)
		}
		f.layers = append(f.layers, lf)
	}
	return f
}

// OutDim returns the output width.
func (m *MLPF32) OutDim() int { return m.out }

// f32Scratch ping-pongs two float32 activation buffers across layers.
type f32Scratch struct{ a, b []float32 }

var f32Pool = sync.Pool{New: func() interface{} { return &f32Scratch{} }}

func (s *f32Scratch) take(which *[]float32, n int) []float32 {
	if cap(*which) < n {
		*which = make([]float32, n)
	}
	return (*which)[:n]
}

// ApplyInto runs the float32 forward pass over x (n×in), widening the
// final activations into dst (n×out). It panics on shape mismatch,
// mirroring the float64 path's contract.
func (m *MLPF32) ApplyInto(dst, x *Mat) {
	if x.C != m.in || dst.R != x.R || dst.C != m.out {
		panic(fmt.Sprintf("nn: MLPF32.ApplyInto: %d×%d through %d→%d into %d×%d",
			x.R, x.C, m.in, m.out, dst.R, dst.C))
	}
	n := x.R
	sc := f32Pool.Get().(*f32Scratch)
	cur := sc.take(&sc.a, n*m.in)
	for i, v := range x.W {
		cur[i] = float32(v)
	}
	inDim := m.in
	for li, l := range m.layers {
		nxt := sc.take(&sc.b, n*l.out)
		for r := 0; r < n; r++ {
			xr := cur[r*inDim : (r+1)*inDim]
			or := nxt[r*l.out : (r+1)*l.out]
			copy(or, l.b)
			for k, xv := range xr {
				if xv == 0 {
					continue
				}
				wr := l.w[k*l.out : (k+1)*l.out]
				for j, wv := range wr {
					or[j] += xv * wv
				}
			}
		}
		if li < len(m.layers)-1 {
			applyActF32(m.act, nxt)
		}
		sc.a, sc.b = sc.b, sc.a
		cur = nxt
		inDim = l.out
	}
	for i, v := range cur[:n*m.out] {
		dst.W[i] = float64(v)
	}
	f32Pool.Put(sc)
}

func applyActF32(a Activation, x []float32) {
	switch a {
	case ActTanh:
		for i, v := range x {
			x[i] = float32(math.Tanh(float64(v)))
		}
	case ActSigmoid:
		for i, v := range x {
			x[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	default: // ReLU
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			}
		}
	}
}
