// Package nn is a small, dependency-free neural-network library built
// for the LHMM reproduction: dense float64 matrices, tape-based
// reverse-mode automatic differentiation, the layers the paper's
// architecture needs (linear, MLP, additive attention, R-GCN message
// passing is composed from these), cross-entropy with label smoothing,
// and the Adam optimizer (§IV, §V-A2).
//
// It substitutes for the deep-learning stack the paper used (see
// DESIGN.md §2): the math is the same, validated by finite-difference
// gradient checks in the test suite, at laptop scale.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Mat is a dense row-major matrix of float64.
type Mat struct {
	R, C int
	W    []float64
}

// NewMat allocates an R×C zero matrix. It panics on non-positive
// dimensions (programmer error).
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %d×%d", r, c))
	}
	return &Mat{R: r, C: c, W: make([]float64, r*c)}
}

// FromSlice builds an R×C matrix from row-major data. It panics when
// len(data) != r*c.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("nn: FromSlice: %d values for %d×%d", len(data), r, c))
	}
	m := NewMat(r, c)
	copy(m.W, data)
	return m
}

// RowVec builds a 1×n matrix from the values.
func RowVec(vals ...float64) *Mat { return FromSlice(1, len(vals), vals) }

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.W[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.W[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.W, m.W)
	return out
}

// Zero sets every element to 0.
func (m *Mat) Zero() {
	for i := range m.W {
		m.W[i] = 0
	}
}

// Fill sets every element to v.
func (m *Mat) Fill(v float64) {
	for i := range m.W {
		m.W[i] = v
	}
}

// AddInPlace adds o elementwise. It panics on shape mismatch.
func (m *Mat) AddInPlace(o *Mat) {
	m.mustSameShape(o, "AddInPlace")
	for i := range m.W {
		m.W[i] += o.W[i]
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Mat) ScaleInPlace(s float64) {
	for i := range m.W {
		m.W[i] *= s
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.W[i*m.C : (i+1)*m.C] }

// MaxAbs returns the largest absolute element value.
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, v := range m.W {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Xavier fills the matrix with Glorot-uniform values scaled by its
// shape, the initialization used for every trainable weight.
func (m *Mat) Xavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.R+m.C))
	for i := range m.W {
		m.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

func (m *Mat) mustSameShape(o *Mat, op string) {
	if m.R != o.R || m.C != o.C {
		panic(fmt.Sprintf("nn: %s: shape mismatch %d×%d vs %d×%d", op, m.R, m.C, o.R, o.C))
	}
}

// matmulWorkers bounds the goroutines a single large MatMulInto may
// fan out to. It defaults to GOMAXPROCS and is adjusted (atomically)
// by SetMatMulWorkers; 1 forces every product onto the calling
// goroutine.
var matmulWorkers atomic.Int64

func init() { matmulWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetMatMulWorkers bounds the worker pool large matrix products fan out
// to (n < 1 resets to GOMAXPROCS). Row-parallel products are
// bit-identical to sequential ones — each output row is computed by
// exactly one worker in the same inner-loop order — so this is purely a
// throughput knob. It returns the previous setting.
func SetMatMulWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(matmulWorkers.Swap(int64(n)))
}

// matmulParallelMinFlops is the approximate multiply-add count below
// which forking workers costs more than the product itself.
const matmulParallelMinFlops = 1 << 17

// MatMulInto computes dst = a·b. Shapes must agree; dst must be
// preallocated a.R×b.C. Used by both the forward pass and the backward
// closures. Large products are split row-blockwise across a bounded
// worker pool (see SetMatMulWorkers); the result is bit-identical to
// the sequential order because every dst row is produced by one worker
// with an unchanged accumulation order.
func MatMulInto(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("nn: MatMulInto: %d×%d · %d×%d -> %d×%d", a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	workers := int(matmulWorkers.Load())
	if workers > a.R {
		workers = a.R
	}
	if workers > 1 && a.R*a.C*b.C >= matmulParallelMinFlops {
		var wg sync.WaitGroup
		chunk := (a.R + workers - 1) / workers
		for lo := 0; lo < a.R; lo += chunk {
			hi := lo + chunk
			if hi > a.R {
				hi = a.R
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulRows(dst, a, b, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulRows(dst, a, b, 0, a.R)
}

// matMulRows computes dst rows [lo, hi) of a·b.
func matMulRows(dst, a, b *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.W[i*a.C : (i+1)*a.C]
		dr := dst.W[i*dst.C : (i+1)*dst.C]
		for j := range dr {
			dr[j] = 0
		}
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.W[k*b.C : (k+1)*b.C]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// TransposeInto computes dst = mᵀ. dst must be preallocated m.C×m.R.
func TransposeInto(dst, m *Mat) {
	if dst.R != m.C || dst.C != m.R {
		panic("nn: TransposeInto: shape mismatch")
	}
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			dst.W[j*dst.C+i] = m.W[i*m.C+j]
		}
	}
}
