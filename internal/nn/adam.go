package nn

import "math"

// Adam implements the Adam optimizer with decoupled weight decay, the
// training setup the paper uses (§V-A2: Adam, lr 1e-3, weight decay
// 1e-4).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
}

// NewAdam returns an optimizer with the paper's defaults.
func NewAdam() *Adam {
	return &Adam{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 1e-4}
}

// Step applies one update to every parameter from its accumulated
// gradient, then clears the gradients.
func (a *Adam) Step(params []*Param) {
	for _, p := range params {
		if p.m == nil {
			p.m = NewMat(p.W.R, p.W.C)
			p.v = NewMat(p.W.R, p.W.C)
		}
		p.step++
		bc1 := 1 - math.Pow(a.Beta1, float64(p.step))
		bc2 := 1 - math.Pow(a.Beta2, float64(p.step))
		for i := range p.W.W {
			g := p.Grad.W[i]
			p.m.W[i] = a.Beta1*p.m.W[i] + (1-a.Beta1)*g
			p.v.W[i] = a.Beta2*p.v.W[i] + (1-a.Beta2)*g*g
			mHat := p.m.W[i] / bc1
			vHat := p.v.W[i] / bc2
			p.W.W[i] -= a.LR * (mHat/(math.Sqrt(vHat)+a.Eps) + a.WeightDecay*p.W.W[i])
		}
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm. It returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.W {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
