package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The inference-mode Apply paths must agree exactly with the tape
// forward pass.

func TestLinearApplyMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 4, 3, rng)
	x := NewMat(5, 4)
	x.Xavier(rng)
	tp := NewTape()
	want := l.Forward(tp, tp.Const(x)).Val
	got := l.Apply(x)
	for i := range want.W {
		if math.Abs(want.W[i]-got.W[i]) > 1e-12 {
			t.Fatalf("Apply mismatch at %d: %v vs %v", i, got.W[i], want.W[i])
		}
	}
}

func TestMLPApplyMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, act := range []Activation{ActReLU, ActTanh, ActSigmoid} {
		m := NewMLP("m", []int{3, 6, 2}, act, rng)
		x := NewMat(4, 3)
		x.Xavier(rng)
		tp := NewTape()
		want := m.Forward(tp, tp.Const(x)).Val
		got := m.Apply(x)
		for i := range want.W {
			if math.Abs(want.W[i]-got.W[i]) > 1e-12 {
				t.Fatalf("act %v: Apply mismatch at %d", act, i)
			}
		}
	}
}

func TestAttentionApplyMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAttention("a", 4, 3, rng)
	q := NewMat(1, 4)
	q.Xavier(rng)
	k := NewMat(6, 4)
	k.Xavier(rng)
	v := NewMat(6, 4)
	v.Xavier(rng)
	tp := NewTape()
	wantOut, wantW := a.Forward(tp, tp.Const(q), tp.Const(k), tp.Const(v))
	gotOut, gotW := a.Apply(q, k, v)
	for i := range wantOut.Val.W {
		if math.Abs(wantOut.Val.W[i]-gotOut.W[i]) > 1e-12 {
			t.Fatalf("output mismatch at %d: %v vs %v", i, gotOut.W[i], wantOut.Val.W[i])
		}
	}
	for i := range gotW {
		if math.Abs(wantW.Val.At(i, 0)-gotW[i]) > 1e-12 {
			t.Fatalf("weight mismatch at %d", i)
		}
	}
}
